package core

import (
	"fmt"
	"testing"
	"time"

	"bbcast/internal/wire"
)

// Admission-control and state-GC tests: every bound from ISSUE 4 — token
// bucket, dedup-before-verify, neighbour/store/missing/reqSeen caps,
// tombstone quiescence — exercised directly against one protocol instance.

// admitTestConfig disables rate limiting so tests of the other bounds can
// send back-to-back packets without tripping the bucket.
func admitTestConfig() Config {
	cfg := testConfig()
	cfg.AdmitRate = 0
	return cfg
}

func TestAdmissionBucketShedsFlood(t *testing.T) {
	cfg := testConfig()
	cfg.AdmitRate = 2
	cfg.AdmitBurst = 4
	h := newHarness(t, 0, cfg)

	// Ten back-to-back packets from one sender: the first burst-worth are
	// admitted (and accepted — all are validly signed), the rest shed before
	// any signature check.
	for seq := wire.Seq(1); seq <= 10; seq++ {
		h.p.HandlePacket(h.dataFrom(1, seq, []byte("flood")))
	}
	st := h.p.Stats()
	if st.Accepted != 4 {
		t.Fatalf("accepted %d of a 10-packet burst, want burst size 4", st.Accepted)
	}
	if st.RateLimited != 6 {
		t.Fatalf("rate-limited %d, want 6", st.RateLimited)
	}

	// The bucket refills at AdmitRate: two seconds buy four more tokens.
	h.run(2 * time.Second)
	h.p.HandlePacket(h.dataFrom(1, 11, []byte("later")))
	if got := h.p.Stats(); got.Accepted != 5 || got.RateLimited != 6 {
		t.Fatalf("after refill: accepted=%d rate-limited=%d, want 5 and 6",
			got.Accepted, got.RateLimited)
	}
}

func TestDuplicateDataVerifiedByByteEquality(t *testing.T) {
	h := newHarness(t, 0, admitTestConfig())
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("payload")))
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("payload"))) // byte-identical replay
	st := h.p.Stats()
	if st.Accepted != 1 || st.Duplicates != 1 {
		t.Fatalf("accepted=%d duplicates=%d, want 1 and 1", st.Accepted, st.Duplicates)
	}
	if st.DedupSkips != 1 {
		t.Fatalf("dedup-skips=%d, want 1 (replay must not cost a verification)", st.DedupSkips)
	}
}

func TestGossipReplayVerifiedByByteEquality(t *testing.T) {
	h := newHarness(t, 0, admitTestConfig())
	id := wire.MsgID{Origin: 2, Seq: 9}
	h.p.HandlePacket(h.gossipFrom(1, id))
	if len(h.p.missing) != 1 {
		t.Fatalf("missing table has %d entries, want 1", len(h.p.missing))
	}
	// The identical advertisement again (same header signature): matched
	// against the tracked entry by byte equality, not re-verified.
	h.p.HandlePacket(h.gossipFrom(1, id))
	if st := h.p.Stats(); st.DedupSkips != 1 || st.BadSignatures != 0 {
		t.Fatalf("dedup-skips=%d bad-sigs=%d, want 1 and 0", st.DedupSkips, st.BadSignatures)
	}
}

func TestGossipBatchTrimmedToRxCap(t *testing.T) {
	cfg := admitTestConfig()
	cfg.GossipMaxEntriesRx = 4
	h := newHarness(t, 0, cfg)
	ids := make([]wire.MsgID, 10)
	for i := range ids {
		ids[i] = wire.MsgID{Origin: 2, Seq: wire.Seq(i + 1)}
	}
	h.p.HandlePacket(h.gossipFrom(1, ids...))
	if len(h.p.missing) != 4 {
		t.Fatalf("missing table has %d entries after a 10-entry batch, want the rx cap 4",
			len(h.p.missing))
	}
}

func TestForgedGossipEntryRejected(t *testing.T) {
	h := newHarness(t, 0, admitTestConfig())
	pkt := &wire.Packet{
		Kind: wire.KindGossip, Sender: 1, TTL: 1, Target: wire.NoNode, Origin: wire.NoNode,
		Gossip: []wire.GossipEntry{{
			ID:  wire.MsgID{Origin: 2, Seq: 1},
			Sig: []byte("not a signature"),
		}},
	}
	h.p.HandlePacket(pkt)
	if st := h.p.Stats(); st.BadSignatures != 1 {
		t.Fatalf("bad-signatures=%d, want 1", st.BadSignatures)
	}
	if len(h.p.missing) != 0 {
		t.Fatal("forged advertisement must not be tracked as missing")
	}
}

func TestNeighborTableEvictsLRU(t *testing.T) {
	cfg := admitTestConfig()
	cfg.MaxNeighbors = 4
	h := newHarness(t, 0, cfg)
	for i := 1; i <= 8; i++ {
		h.p.HandlePacket(h.dataFrom(wire.NodeID(i), 1, []byte("x")))
		h.run(10 * time.Millisecond) // distinct lastHeard per sender
	}
	if n := h.p.NeighborCount(); n != 4 {
		t.Fatalf("neighbour table has %d entries, want cap 4", n)
	}
	for i := 1; i <= 4; i++ {
		if h.p.neighbors[wire.NodeID(i)] != nil {
			t.Fatalf("stale neighbour %d survived LRU eviction", i)
		}
	}
	for i := 5; i <= 8; i++ {
		if h.p.neighbors[wire.NodeID(i)] == nil {
			t.Fatalf("recent neighbour %d was evicted", i)
		}
	}
	if st := h.p.Stats(); st.Evictions != 4 {
		t.Fatalf("evictions=%d, want 4", st.Evictions)
	}
}

func TestStoreCapEvictsTombstonesFirst(t *testing.T) {
	cfg := admitTestConfig()
	cfg.MaxStore = 2
	h := newHarness(t, 0, cfg)
	a := wire.MsgID{Origin: 1, Seq: 1}
	b := wire.MsgID{Origin: 1, Seq: 2}
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("a")))
	h.run(10 * time.Millisecond)
	h.p.HandlePacket(h.dataFrom(1, 2, []byte("b")))
	// Tombstone the older entry by hand: at the cap it must be the victim
	// even though a younger held entry exists.
	h.p.store[a].purged = true
	h.p.store[a].purgedAt = h.p.deps.Clock.Now()
	h.run(10 * time.Millisecond)
	h.p.HandlePacket(h.dataFrom(1, 3, []byte("c")))
	if _, ok := h.p.store[a]; ok {
		t.Fatal("tombstone survived store-cap eviction")
	}
	if !h.p.Holds(b) || !h.p.Holds(wire.MsgID{Origin: 1, Seq: 3}) {
		t.Fatal("held payloads were evicted while a tombstone existed")
	}
	if st := h.p.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}
}

func TestStoreCapEvictsOldestHeld(t *testing.T) {
	cfg := admitTestConfig()
	cfg.MaxStore = 4
	h := newHarness(t, 0, cfg)
	for seq := wire.Seq(1); seq <= 8; seq++ {
		h.p.HandlePacket(h.dataFrom(1, seq, []byte("x")))
		h.run(10 * time.Millisecond)
	}
	if n := len(h.p.store); n != 4 {
		t.Fatalf("store has %d entries, want cap 4", n)
	}
	for seq := wire.Seq(5); seq <= 8; seq++ {
		if !h.p.Holds(wire.MsgID{Origin: 1, Seq: seq}) {
			t.Fatalf("recent message seq %d was evicted", seq)
		}
	}
}

func TestMissingTableRejectsAtCap(t *testing.T) {
	cfg := admitTestConfig()
	cfg.MaxMissing = 2
	h := newHarness(t, 0, cfg)
	for i := 1; i <= 4; i++ {
		h.p.HandlePacket(h.gossipFrom(1, wire.MsgID{Origin: 2, Seq: wire.Seq(i)}))
	}
	if n := len(h.p.missing); n != 2 {
		t.Fatalf("missing table has %d entries, want cap 2", n)
	}
	if st := h.p.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions=%d, want 2 rejected advertisements", st.Evictions)
	}
}

func TestReqSeenCapAndTTL(t *testing.T) {
	cfg := admitTestConfig()
	cfg.MaxReqSeen = 3
	cfg.ReqSeenTTL = 2 * time.Second
	h := newHarness(t, 0, cfg)

	for i := 1; i <= 5; i++ {
		h.p.bumpRequestCount(wire.MsgID{Origin: 2, Seq: wire.Seq(i)}, 3)
		h.run(time.Millisecond) // distinct touch times
	}
	if n := h.p.ReqSeenCount(); n != 3 {
		t.Fatalf("reqSeen has %d records, want cap 3", n)
	}
	// Idle records expire on the purge tick once past the TTL.
	h.run(cfg.ReqSeenTTL + cfg.PurgeInterval + time.Second)
	if n := h.p.ReqSeenCount(); n != 0 {
		t.Fatalf("reqSeen has %d records after the TTL, want 0", n)
	}
}

func TestReqSeenClearedOnAccept(t *testing.T) {
	h := newHarness(t, 0, admitTestConfig())
	id := wire.MsgID{Origin: 1, Seq: 1}
	h.p.bumpRequestCount(id, 3)
	if h.p.ReqSeenCount() != 1 {
		t.Fatal("request record not created")
	}
	// Accepting the data satisfies the request cycle; the record is dropped
	// instead of lingering until the TTL (the ISSUE 4 satellite-b leak).
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("x")))
	if n := h.p.ReqSeenCount(); n != 0 {
		t.Fatalf("reqSeen has %d records after the message arrived, want 0", n)
	}
}

func TestTombstoneQuiescenceGC(t *testing.T) {
	cfg := admitTestConfig()
	cfg.PurgeTimeout = 2 * time.Second
	cfg.PurgeInterval = 1 * time.Second
	cfg.StoreQuiescence = 3 * time.Second
	h := newHarness(t, 0, cfg)
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("x")))

	h.run(4 * time.Second) // past PurgeTimeout: payload dropped, tombstone kept
	if held, tombs := h.p.StoreSize(); held != 0 || tombs != 1 {
		t.Fatalf("after purge: held=%d tombstones=%d, want 0 and 1", held, tombs)
	}
	h.run(5 * time.Second) // past StoreQuiescence: tombstone deleted outright
	if held, tombs := h.p.StoreSize(); held != 0 || tombs != 0 {
		t.Fatalf("after quiescence: held=%d tombstones=%d, want 0 and 0", held, tombs)
	}
}

func TestRateLimitDisabledAdmitsEverything(t *testing.T) {
	h := newHarness(t, 0, admitTestConfig()) // AdmitRate = 0
	for seq := wire.Seq(1); seq <= 500; seq++ {
		h.p.HandlePacket(h.dataFrom(1, seq, []byte(fmt.Sprintf("m%d", seq))))
	}
	if st := h.p.Stats(); st.RateLimited != 0 || st.Accepted != 500 {
		t.Fatalf("accepted=%d rate-limited=%d, want 500 and 0", st.Accepted, st.RateLimited)
	}
}
