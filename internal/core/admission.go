package core

import (
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

// Admission control and state garbage collection: everything that keeps one
// node's memory and signature-verification work bounded regardless of what
// its neighbours send. The cheap checks here run before any cryptography —
// a flooding sender costs a map lookup and a float comparison per packet,
// not an HMAC.

// reqRecord tracks how often each requester asked for one message, with a
// touch time so idle records can expire (the old map[wire.NodeID]int grew
// forever; see ISSUE 4 satellite b).
type reqRecord struct {
	//bbvet:bounded-by maxReqCounters bumpRequestCount stops admitting new requesters past the cap; total is maxReqCounters×MaxReqSeen
	counts  map[wire.NodeID]int
	touched time.Duration
}

// observeAdmission reports one admission/GC action to the observer.
func (p *Protocol) observeAdmission(event obsv.AdmissionEvent) {
	if p.deps.Obs != nil {
		p.deps.Obs.OnAdmission(p.deps.Clock.Now(), p.deps.ID, event)
	}
}

// admit refills the sender's token bucket and charges one token for the
// packet. Buckets live in neighborState, so the limiter's memory is bounded
// by MaxNeighbors. Rate limiting is disabled when AdmitRate <= 0.
func (p *Protocol) admit(nb *neighborState) bool {
	rate := p.cfg.AdmitRate
	if rate <= 0 {
		return true
	}
	burst := p.cfg.AdmitBurst
	if burst <= 0 {
		burst = 2 * rate
	}
	now := p.deps.Clock.Now()
	if elapsed := now - nb.lastRefill; elapsed > 0 {
		nb.tokens += elapsed.Seconds() * rate
		if nb.tokens > burst {
			nb.tokens = burst
		}
	}
	nb.lastRefill = now
	if nb.tokens < 1 {
		return false
	}
	nb.tokens--
	return true
}

// enforceStoreCap makes room for one store insertion when MaxStore is set:
// tombstones are evicted oldest-purged-first (they are only a duplicate
// filter), then held entries oldest-received-first. The O(n) scan runs only
// when the table is actually at its cap.
func (p *Protocol) enforceStoreCap() {
	max := p.cfg.MaxStore
	if max <= 0 || len(p.store) < max {
		return
	}
	for len(p.store) >= max {
		// The scan below ranges the map unsorted, which is fine only because
		// the victim choice is a pure minimum with a total order: tombstones
		// before held entries, then oldest timestamp, then smallest id. The
		// id tie-break matters — entries inserted at the same virtual instant
		// are common, and without it the randomized iteration order would
		// pick the victim (and hence the emitted eviction event) per run.
		var victim wire.MsgID
		var victimAt time.Duration
		victimPurged, found := false, false
		for id, st := range p.store { //bbvet:unordered pure minimum with a total order (purged flag, timestamp, id); no emission until the loop ends
			at := st.receivedAt
			if st.purged {
				at = st.purgedAt
			}
			switch {
			case !found,
				st.purged && !victimPurged,
				st.purged == victimPurged && (at < victimAt || (at == victimAt && id.Less(victim))):
				victim, victimAt, victimPurged, found = id, at, st.purged, true
			}
		}
		if !found {
			return
		}
		delete(p.store, victim)
		p.stats.Evictions++
		p.observeAdmission(obsv.AdmitStoreEvict)
	}
}

// enforceNeighborCap makes room for one neighbour insertion when MaxNeighbors
// is set by evicting the least recently heard entry (LRU).
func (p *Protocol) enforceNeighborCap() {
	max := p.cfg.MaxNeighbors
	if max <= 0 || len(p.neighbors) < max {
		return
	}
	for len(p.neighbors) >= max {
		// Pure minimum over the map with a total order (LRU timestamp, then
		// smallest id): iteration order cannot pick the victim, so ranging
		// the map unsorted stays deterministic. Same-instant lastHeard ties
		// are routine — every packet of a burst carries one virtual time.
		var victim wire.NodeID
		var victimAt time.Duration
		found := false
		for id, nb := range p.neighbors {
			if !found || nb.lastHeard < victimAt || (nb.lastHeard == victimAt && id < victim) {
				victim, victimAt, found = id, nb.lastHeard, true
			}
		}
		if !found {
			return
		}
		delete(p.neighbors, victim)
		delete(p.linkQual, victim)
		p.stats.Evictions++
		p.observeAdmission(obsv.AdmitNeighborEvict)
	}
}

// bumpRequestCount counts one request for id from a requester, creating the
// record (under the MaxReqSeen cap, evicting the least recently touched one
// at the cap) and refreshing its touch time.
func (p *Protocol) bumpRequestCount(id wire.MsgID, from wire.NodeID) int {
	now := p.deps.Clock.Now()
	rec := p.reqSeen[id]
	if rec == nil {
		if max := p.cfg.MaxReqSeen; max > 0 && len(p.reqSeen) >= max {
			p.evictOldestReqSeen()
		}
		rec = &reqRecord{counts: make(map[wire.NodeID]int, 2)}
		p.reqSeen[id] = rec
	}
	rec.touched = now
	if _, tracked := rec.counts[from]; !tracked && len(rec.counts) >= maxReqCounters {
		// Cap the per-record requester map: an untracked requester past the
		// cap is served as a first-time asker but not remembered. Repeat
		// offenders are by definition already tracked.
		return 1
	}
	rec.counts[from]++
	return rec.counts[from]
}

// evictOldestReqSeen removes the least recently touched request record.
func (p *Protocol) evictOldestReqSeen() {
	// Pure minimum with an id tie-break, as in the scans above: iteration
	// order cannot leak into the eviction choice or the emitted event.
	var victim wire.MsgID
	var victimAt time.Duration
	found := false
	for id, rec := range p.reqSeen { //bbvet:unordered pure minimum with a total order (touch time, then id); no emission until the loop ends
		if !found || rec.touched < victimAt || (rec.touched == victimAt && id.Less(victim)) {
			victim, victimAt, found = id, rec.touched, true
		}
	}
	if !found {
		return
	}
	delete(p.reqSeen, victim)
	p.stats.Evictions++
	p.observeAdmission(obsv.AdmitReqSeenExpire)
}

// ReqSeenCount reports the number of tracked request records (test and
// invariant input).
func (p *Protocol) ReqSeenCount() int { return len(p.reqSeen) }
