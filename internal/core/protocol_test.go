package core

import (
	"bytes"
	"testing"
	"time"

	"bbcast/internal/env"
	"bbcast/internal/fd"
	"bbcast/internal/overlay"
	"bbcast/internal/sig"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// harness hosts one protocol instance with captured output and full control
// over time. Packets "from" other nodes are crafted with the shared scheme
// (the test is the omniscient PKI).
type harness struct {
	t      *testing.T
	eng    *sim.Engine
	scheme sig.Scheme
	p      *Protocol

	sent      []*wire.Packet
	delivered []wire.MsgID
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.GossipJitter = 0
	cfg.MaintenanceJitter = 0
	return cfg
}

func newHarness(t *testing.T, selfID wire.NodeID, cfg Config) *harness {
	t.Helper()
	h := &harness{t: t, eng: sim.New(1), scheme: sig.NewHMAC(16, 7)}
	h.p = New(cfg, Deps{
		ID:     selfID,
		Clock:  env.SimClock{Eng: h.eng},
		Send:   func(pkt *wire.Packet) { h.sent = append(h.sent, pkt) },
		Scheme: h.scheme,
		Rand:   h.eng.SubRand(uint64(selfID)),
		Deliver: func(origin wire.NodeID, id wire.MsgID, payload []byte) {
			h.delivered = append(h.delivered, id)
		},
	})
	t.Cleanup(h.p.Stop)
	return h
}

// run advances virtual time by d.
func (h *harness) run(d time.Duration) { h.eng.Run(h.eng.Now() + d) }

// dataFrom builds a correctly signed data packet originated and sent by
// `from`.
func (h *harness) dataFrom(from wire.NodeID, seq wire.Seq, payload []byte) *wire.Packet {
	id := wire.MsgID{Origin: from, Seq: seq}
	return &wire.Packet{
		Kind:    wire.KindData,
		Sender:  from,
		TTL:     1,
		Target:  wire.NoNode,
		Origin:  from,
		Seq:     seq,
		Payload: payload,
		Sig:     h.scheme.Sign(uint32(from), wire.DataSigBytes(id, payload)),
	}
}

// forwardedBy re-stamps a data packet as forwarded by hop.
func forwardedBy(pkt *wire.Packet, hop wire.NodeID) *wire.Packet {
	cp := pkt.Clone()
	cp.Sender = hop
	return cp
}

// gossipFrom builds a signed gossip packet from `sender` advertising ids
// originated by their respective origins.
func (h *harness) gossipFrom(sender wire.NodeID, ids ...wire.MsgID) *wire.Packet {
	pkt := &wire.Packet{
		Kind:   wire.KindGossip,
		Sender: sender,
		TTL:    1,
		Target: wire.NoNode,
		Origin: wire.NoNode,
	}
	for _, id := range ids {
		pkt.Gossip = append(pkt.Gossip, wire.GossipEntry{
			ID:  id,
			Sig: h.scheme.Sign(uint32(id.Origin), wire.HeaderSigBytes(id)),
		})
	}
	return pkt
}

// stateFrom builds a signed overlay-state packet.
func (h *harness) stateFrom(sender wire.NodeID, st *wire.OverlayState) *wire.Packet {
	return &wire.Packet{
		Kind:     wire.KindOverlayState,
		Sender:   sender,
		TTL:      1,
		Target:   wire.NoNode,
		Origin:   wire.NoNode,
		State:    st,
		StateSig: h.scheme.Sign(uint32(sender), wire.StateSigBytes(sender, st)),
	}
}

// sentOfKind filters captured transmissions.
func (h *harness) sentOfKind(k wire.Kind) []*wire.Packet {
	var out []*wire.Packet
	for _, p := range h.sent {
		if p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

// makeOverlay drives the node into the overlay: with an empty neighbourhood
// the leader/MIS rule elects it after the damped maintenance steps.
func (h *harness) makeOverlay() {
	h.run(4 * time.Second)
	if !h.p.InOverlay() {
		h.t.Fatal("node did not elect itself with no competing neighbours")
	}
	h.sent = nil
}

// introduceNeighbors installs admitted neighbours via two state packets each
// (passing the admission debounce).
func (h *harness) introduceNeighbors(states map[wire.NodeID]*wire.OverlayState) {
	for id, st := range states {
		h.p.HandlePacket(h.stateFrom(id, st))
		h.p.HandlePacket(h.stateFrom(id, st))
	}
}

func TestBroadcastEmitsSignedDataAndDeliversOwn(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	id := h.p.Broadcast([]byte("hello"))
	if id.Origin != 0 || id.Seq != 1 {
		t.Fatalf("unexpected id %v", id)
	}
	data := h.sentOfKind(wire.KindData)
	if len(data) != 1 {
		t.Fatalf("sent %d data packets, want 1", len(data))
	}
	pkt := data[0]
	if !h.scheme.Verify(0, wire.DataSigBytes(id, pkt.Payload), pkt.Sig) {
		t.Fatal("data signature invalid")
	}
	if len(h.delivered) != 1 || h.delivered[0] != id {
		t.Fatalf("own delivery = %v", h.delivered)
	}
	if !h.p.Holds(id) {
		t.Fatal("originator does not hold own message")
	}
}

func TestBroadcastSeqIncrements(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	a := h.p.Broadcast([]byte("a"))
	b := h.p.Broadcast([]byte("b"))
	if b.Seq != a.Seq+1 {
		t.Fatalf("seq did not increment: %v %v", a, b)
	}
}

func TestHandleDataAcceptsOnceAndFiltersDuplicates(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	h.p.HandlePacket(pkt.Clone())
	if len(h.delivered) != 1 {
		t.Fatalf("delivered %d times, want once (validity: accept-once)", len(h.delivered))
	}
	if h.p.Stats().Duplicates != 1 {
		t.Fatalf("duplicates = %d", h.p.Stats().Duplicates)
	}
}

func TestHandleDataRejectsBadSignature(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	pkt := h.dataFrom(1, 1, []byte("m"))
	pkt.Payload[0] ^= 0xFF // tamper
	pkt.Sender = 2         // the tampering forwarder
	h.p.HandlePacket(pkt)
	if len(h.delivered) != 0 {
		t.Fatal("tampered message delivered (validity violated)")
	}
	if h.p.Trust().Level(2) != fd.Untrusted {
		t.Fatal("tampering sender not suspected")
	}
	if h.p.Trust().Level(1) == fd.Untrusted {
		t.Fatal("innocent originator suspected")
	}
}

func TestHandleDataImpersonationRejected(t *testing.T) {
	// Node 2 claims a message originates from node 1 but signs with its own
	// key — verification against 1's key must fail.
	h := newHarness(t, 0, testConfig())
	id := wire.MsgID{Origin: 1, Seq: 1}
	payload := []byte("forged")
	pkt := &wire.Packet{
		Kind: wire.KindData, Sender: 2, TTL: 1, Target: wire.NoNode,
		Origin: 1, Seq: 1, Payload: payload,
		Sig: h.scheme.Sign(2, wire.DataSigBytes(id, payload)),
	}
	h.p.HandlePacket(pkt)
	if len(h.delivered) != 0 {
		t.Fatal("impersonated message delivered")
	}
}

func TestOverlayNodeForwardsData(t *testing.T) {
	h := newHarness(t, 5, testConfig())
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	fwd := h.sentOfKind(wire.KindData)
	if len(fwd) != 1 {
		t.Fatalf("overlay node forwarded %d times, want 1", len(fwd))
	}
	if fwd[0].Sender != 5 {
		t.Fatalf("forward sender = %d", fwd[0].Sender)
	}
}

func TestNonOverlayNodeDoesNotForwardTTL1(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	// Suppress self-election: a higher-ID dominator neighbour.
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{
		9: {Active: true, Dominator: true, Neighbors: []wire.NodeID{0}},
	})
	h.run(4 * time.Second)
	if h.p.InOverlay() {
		t.Fatal("node joined overlay despite higher dominator neighbour")
	}
	h.sent = nil
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	if len(h.sentOfKind(wire.KindData)) != 0 {
		t.Fatal("non-overlay node forwarded a TTL-1 data packet")
	}
}

func TestNonOverlayNodeRelaysTTL2(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{
		9: {Active: true, Dominator: true, Neighbors: []wire.NodeID{0}},
	})
	h.run(4 * time.Second)
	h.sent = nil
	pkt := h.dataFrom(1, 1, []byte("m"))
	pkt.TTL = 2
	h.p.HandlePacket(pkt)
	fwd := h.sentOfKind(wire.KindData)
	if len(fwd) != 1 || fwd[0].TTL != 1 {
		t.Fatalf("TTL-2 relay: got %d forwards (ttl=%v)", len(fwd), fwd)
	}
}

func TestGossipForMissingSchedulesRequest(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id)) // 2 gossips about 1's message
	if len(h.sentOfKind(wire.KindRequest)) != 0 {
		t.Fatal("request sent before RequestDelay")
	}
	h.run(cfg.RequestDelay + 50*time.Millisecond)
	reqs := h.sentOfKind(wire.KindRequest)
	if len(reqs) != 1 {
		t.Fatalf("requests = %d, want 1", len(reqs))
	}
	if reqs[0].Target != 2 || reqs[0].ID() != id {
		t.Fatalf("request misaddressed: %+v", reqs[0])
	}
}

func TestGossipFromOriginatorDelayedRequest(t *testing.T) {
	// §3.2 line 29 deviation: the originator is asked only as a last
	// resort, after a doubled delay (see DESIGN.md).
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(1, id)) // originator gossips its own message
	h.run(cfg.RequestDelay + cfg.RequestDelay/2)
	if len(h.sentOfKind(wire.KindRequest)) != 0 {
		t.Fatal("originator asked before the doubled delay elapsed")
	}
	h.run(cfg.RequestDelay)
	reqs := h.sentOfKind(wire.KindRequest)
	if len(reqs) != 1 || reqs[0].Target != 1 {
		t.Fatalf("last-resort request to originator missing: %v", reqs)
	}
}

func TestDataArrivalCancelsPendingRequest(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.run(cfg.RequestDelay / 2)
	h.p.HandlePacket(h.dataFrom(1, 7, []byte("m")))
	h.run(cfg.RequestDelay * 3)
	if len(h.sentOfKind(wire.KindRequest)) != 0 {
		t.Fatal("request sent though the data already arrived")
	}
}

func TestOneRequestPerGossiper(t *testing.T) {
	// With the retransmission chain disabled, each distinct gossiper of a
	// missing message is asked exactly once; re-hearing the same gossiper
	// does not re-request (periodic gossip rounds are the retry mechanism
	// and each new gossiper is a new recovery avenue). The retry-enabled
	// behaviour is covered in adaptive_test.go.
	cfg := testConfig()
	cfg.RetryMaxAttempts = 0
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.p.HandlePacket(h.gossipFrom(2, id)) // duplicate gossiper
	h.run(time.Minute)
	if got := len(h.sentOfKind(wire.KindRequest)); got != 1 {
		t.Fatalf("requests = %d, want 1", got)
	}
	h.p.HandlePacket(h.gossipFrom(3, id)) // new gossiper
	h.run(time.Minute)
	if got := len(h.sentOfKind(wire.KindRequest)); got != 2 {
		t.Fatalf("requests = %d, want 2 after a second gossiper", got)
	}
	reqs := h.sentOfKind(wire.KindRequest)
	if reqs[0].Target != 2 || reqs[1].Target != 3 {
		t.Fatalf("request targets = %d,%d", reqs[0].Target, reqs[1].Target)
	}
}

func TestMuteSuspectsUnresponsiveGossiper(t *testing.T) {
	// §3.2 line 28: the gossiper must be able to supply the message; if it
	// never does, MUTE suspects it.
	cfg := testConfig()
	cfg.Mute.Threshold = 1
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.run(cfg.Mute.Timeout + time.Second)
	if h.p.Trust().Level(2) != fd.Untrusted {
		t.Fatal("gossiper that never supplied the message not suspected")
	}
}

func TestRequestServedFromStore(t *testing.T) {
	h := newHarness(t, 5, testConfig())
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	h.sent = nil
	req := &wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2,
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(wire.MsgID{Origin: 1, Seq: 1})),
	}
	h.p.HandlePacket(req)
	resp := h.sentOfKind(wire.KindData)
	if len(resp) != 1 {
		t.Fatalf("responses = %d, want 1", len(resp))
	}
	if resp[0].Target != 3 {
		t.Fatalf("response addressed to %d, want requester 3", resp[0].Target)
	}
	if !bytes.Equal(resp[0].Payload, []byte("m")) {
		t.Fatal("response payload mismatch")
	}
}

func TestRequestIgnoredByNonOverlayNonTarget(t *testing.T) {
	// §3.2 Figure 4 line 43: only overlay nodes and the addressed gossiper
	// react to requests.
	h := newHarness(t, 0, testConfig())
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{
		9: {Active: true, Dominator: true, Neighbors: []wire.NodeID{0}},
	})
	h.run(4 * time.Second)
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	h.sent = nil
	req := &wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 7, // addressed elsewhere
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(wire.MsgID{Origin: 1, Seq: 1})),
	}
	h.p.HandlePacket(req)
	if len(h.sentOfKind(wire.KindData)) != 0 {
		t.Fatal("bystander served a request not addressed to it")
	}
}

func TestRequestUnknownEscalatesFindMissing(t *testing.T) {
	// Figure 4 line 52: an overlay node lacking the message searches two
	// hops out to bypass a Byzantine overlay neighbour.
	h := newHarness(t, 5, testConfig())
	h.makeOverlay()
	id := wire.MsgID{Origin: 1, Seq: 1}
	req := &wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2,
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(id)),
	}
	h.p.HandlePacket(req)
	finds := h.sentOfKind(wire.KindFindMissing)
	if len(finds) != 1 {
		t.Fatalf("find-missing = %d, want 1", len(finds))
	}
	if finds[0].TTL != 2 || finds[0].Target != 2 {
		t.Fatalf("find-missing ttl=%d target=%d, want ttl=2 target=2", finds[0].TTL, finds[0].Target)
	}
}

func TestOriginatorRequestingOwnMessageIndicted(t *testing.T) {
	// Figure 4 line 55.
	cfg := testConfig()
	cfg.Verbose.Threshold = 1
	h := newHarness(t, 5, cfg)
	h.makeOverlay()
	id := wire.MsgID{Origin: 3, Seq: 1}
	req := &wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2,
		Origin: 3, Seq: 1, // node 3 requests its own message
		Sig: h.scheme.Sign(3, wire.HeaderSigBytes(id)),
	}
	h.p.HandlePacket(req)
	if h.p.Trust().Level(3) != fd.Untrusted {
		t.Fatal("originator requesting its own message not indicted")
	}
}

func TestRepeatedRequestsIndictVerbose(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTolerance = 2
	cfg.Verbose.Threshold = 1
	h := newHarness(t, 5, cfg)
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	id := wire.MsgID{Origin: 1, Seq: 1}
	req := &wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2,
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(id)),
	}
	for i := 0; i < 2; i++ {
		h.p.HandlePacket(req.Clone())
	}
	if h.p.Trust().Level(3) == fd.Untrusted {
		t.Fatal("requester indicted within tolerance")
	}
	h.p.HandlePacket(req.Clone())
	if h.p.Trust().Level(3) != fd.Untrusted {
		t.Fatal("spamming requester not indicted past tolerance")
	}
}

func TestFindMissingRelayedWhenUnknown(t *testing.T) {
	// Figure 4 lines 63–66.
	h := newHarness(t, 0, testConfig())
	id := wire.MsgID{Origin: 1, Seq: 1}
	find := &wire.Packet{
		Kind: wire.KindFindMissing, Sender: 4, TTL: 2, Target: 2,
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(id)),
	}
	h.p.HandlePacket(find)
	relayed := h.sentOfKind(wire.KindFindMissing)
	if len(relayed) != 1 || relayed[0].TTL != 1 {
		t.Fatalf("relay = %v", relayed)
	}
	// TTL 1 searches are not relayed further.
	h.sent = nil
	find2 := find.Clone()
	find2.TTL = 1
	h.p.HandlePacket(find2)
	if len(h.sentOfKind(wire.KindFindMissing)) != 0 {
		t.Fatal("TTL-1 find-missing relayed")
	}
}

func TestFindMissingServedByHolder(t *testing.T) {
	// Figure 4 lines 67–78: an overlay holder responds; a neighbour sender
	// gets a TTL-1 response, an unknown (non-neighbour) sender TTL-2.
	h := newHarness(t, 5, testConfig())
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m"))) // sender 1 becomes a neighbour
	h.sent = nil
	id := wire.MsgID{Origin: 1, Seq: 1}
	find := &wire.Packet{
		Kind: wire.KindFindMissing, Sender: 9, TTL: 2, Target: 2,
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(id)),
	}
	h.p.HandlePacket(find) // 9 is not a known neighbour
	resp := h.sentOfKind(wire.KindData)
	if len(resp) != 1 || resp[0].TTL != 2 {
		t.Fatalf("response to unknown sender = %+v, want TTL 2", resp)
	}
}

func TestPurgeTombstonePreventsRedelivery(t *testing.T) {
	cfg := testConfig()
	cfg.PurgeTimeout = 2 * time.Second
	cfg.PurgeInterval = 500 * time.Millisecond
	h := newHarness(t, 0, cfg)
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	h.run(5 * time.Second)
	if h.p.Holds(pkt.ID()) {
		t.Fatal("message not purged after PurgeTimeout")
	}
	h.p.HandlePacket(pkt.Clone())
	if len(h.delivered) != 1 {
		t.Fatalf("purged message re-delivered: %v", h.delivered)
	}
}

func TestGossipTickAdvertisesHeldMessages(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	h.p.Broadcast([]byte("a"))
	h.p.HandlePacket(h.gossipFrom(2, wire.MsgID{Origin: 3, Seq: 9})) // learn a foreign header
	h.p.HandlePacket(h.dataFrom(3, 9, []byte("b")))
	h.sent = nil
	h.run(cfg.GossipInterval + 100*time.Millisecond)
	gossips := h.sentOfKind(wire.KindGossip)
	if len(gossips) != 1 {
		t.Fatalf("gossip packets = %d, want 1 (aggregated)", len(gossips))
	}
	if len(gossips[0].Gossip) != 2 {
		t.Fatalf("gossip entries = %d, want 2", len(gossips[0].Gossip))
	}
	if cfg.PiggybackState && gossips[0].State == nil {
		t.Fatal("overlay state not piggybacked on gossip")
	}
}

func TestGossipAggregationAblation(t *testing.T) {
	cfg := testConfig()
	cfg.GossipAggregation = false
	h := newHarness(t, 0, cfg)
	h.p.Broadcast([]byte("a"))
	h.p.HandlePacket(h.dataFrom(3, 9, []byte("b")))
	h.p.HandlePacket(h.gossipFrom(2, wire.MsgID{Origin: 3, Seq: 9}))
	h.sent = nil
	h.run(cfg.GossipInterval + 100*time.Millisecond)
	gossips := h.sentOfKind(wire.KindGossip)
	if len(gossips) != 2 {
		t.Fatalf("without aggregation want one packet per entry, got %d", len(gossips))
	}
}

func TestStateUpdatesNeighborsAndSecondHandReports(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	st := &wire.OverlayState{
		Active: true, Dominator: true,
		Neighbors: []wire.NodeID{0, 3},
		Suspects:  []wire.NodeID{3},
	}
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{2: st})
	if h.p.NeighborCount() != 1 {
		t.Fatalf("neighbors = %d", h.p.NeighborCount())
	}
	// Second-hand: node 3 demoted to Unknown, not Untrusted.
	if got := h.p.Trust().Level(3); got != fd.Unknown {
		t.Fatalf("Level(3) = %v, want Unknown", got)
	}
	if got := h.p.Trust().Level(2); got != fd.Trusted {
		t.Fatalf("Level(2) = %v, want Trusted", got)
	}
}

func TestBadStateSignatureSuspected(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	st := &wire.OverlayState{Active: true}
	pkt := h.stateFrom(2, st)
	pkt.State.Active = false // tamper after signing
	h.p.HandlePacket(pkt)
	if h.p.Trust().Level(2) != fd.Untrusted {
		t.Fatal("forged state not suspected")
	}
}

func TestRecoveryDisabledAblation(t *testing.T) {
	cfg := testConfig()
	cfg.EnableRecovery = false
	h := newHarness(t, 0, cfg)
	h.p.HandlePacket(h.gossipFrom(2, wire.MsgID{Origin: 1, Seq: 7}))
	h.run(time.Minute)
	if len(h.sentOfKind(wire.KindRequest)) != 0 {
		t.Fatal("recovery disabled but request sent")
	}
}

func TestFindMissingDisabledAblation(t *testing.T) {
	cfg := testConfig()
	cfg.EnableFindMissing = false
	h := newHarness(t, 5, cfg)
	h.makeOverlay()
	id := wire.MsgID{Origin: 1, Seq: 1}
	req := &wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2,
		Origin: 1, Seq: 1,
		Sig: h.scheme.Sign(1, wire.HeaderSigBytes(id)),
	}
	h.p.HandlePacket(req)
	if len(h.sentOfKind(wire.KindFindMissing)) != 0 {
		t.Fatal("find-missing disabled but escalation sent")
	}
}

func TestFDsDisabledNeverSuspect(t *testing.T) {
	cfg := testConfig()
	cfg.EnableFDs = false
	h := newHarness(t, 0, cfg)
	pkt := h.dataFrom(1, 1, []byte("m"))
	pkt.Payload[0] ^= 0xFF
	pkt.Sender = 2
	h.p.HandlePacket(pkt)
	if h.p.Trust().Level(2) != fd.Trusted {
		t.Fatal("FDs disabled but node suspected")
	}
}

func TestOwnPacketsIgnored(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	pkt := h.dataFrom(0, 1, []byte("m"))
	h.p.HandlePacket(pkt) // sender == self
	if len(h.delivered) != 0 {
		t.Fatal("node processed its own transmission")
	}
}

func TestNeighborExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.NeighborTTL = 2 * time.Second
	h := newHarness(t, 0, cfg)
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{2: {Active: true}})
	if h.p.NeighborCount() != 1 {
		t.Fatal("neighbour not registered")
	}
	h.run(5 * time.Second)
	if h.p.NeighborCount() != 0 {
		t.Fatal("silent neighbour not expired")
	}
}

func TestStopCancelsTimers(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	h.p.HandlePacket(h.gossipFrom(2, wire.MsgID{Origin: 1, Seq: 7}))
	h.p.Stop()
	h.run(time.Minute)
	if len(h.sentOfKind(wire.KindRequest)) != 0 {
		t.Fatal("stopped protocol still sent a request")
	}
	if len(h.sentOfKind(wire.KindGossip)) != 0 {
		t.Fatal("stopped protocol still gossiped")
	}
}

func TestMuteExpectationOnNonOverlayDataReceipt(t *testing.T) {
	// §3.2 lines 8–11: data received from a non-overlay non-originator arms
	// MUTE against the overlay neighbours; if they never forward it, they
	// are suspected.
	cfg := testConfig()
	cfg.Mute.Threshold = 1
	h := newHarness(t, 0, cfg)
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{
		9: {Active: true, Dominator: true, Neighbors: []wire.NodeID{0}},
	})
	h.run(time.Second)
	// Data arrives from node 3 (non-overlay, non-originator).
	h.p.HandlePacket(forwardedBy(h.dataFrom(1, 1, []byte("m")), 3))
	h.run(cfg.Mute.Timeout + time.Second)
	if h.p.Trust().Level(9) != fd.Untrusted {
		t.Fatal("overlay neighbour that failed to forward not suspected")
	}
}

func TestMuteExpectationFulfilledByOverlayForward(t *testing.T) {
	cfg := testConfig()
	cfg.Mute.Threshold = 1
	h := newHarness(t, 0, cfg)
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{
		9: {Active: true, Dominator: true, Neighbors: []wire.NodeID{0}},
	})
	h.run(time.Second)
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(forwardedBy(pkt, 3))
	// The overlay neighbour forwards shortly after (a duplicate for us).
	h.p.HandlePacket(forwardedBy(pkt, 9))
	h.run(cfg.Mute.Timeout + time.Second)
	if h.p.Trust().Level(9) != fd.Trusted {
		t.Fatal("overlay neighbour suspected despite forwarding (accuracy violated)")
	}
}

func TestRoleDemotionOnHigherDominator(t *testing.T) {
	h := newHarness(t, 5, testConfig())
	h.makeOverlay()
	if h.p.Role() != overlay.Dominator {
		t.Fatalf("role = %v", h.p.Role())
	}
	// A higher-ID dominator neighbour appears: MIS safety demotes on the
	// next maintenance step.
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{
		9: {Active: true, Dominator: true, Neighbors: []wire.NodeID{5}},
	})
	h.run(2 * time.Second)
	if h.p.Role() == overlay.Dominator {
		t.Fatal("dominator did not yield to higher-ID dominator")
	}
}
