package core

// Adversarial robustness tests: the protocol must survive arbitrary garbage
// and adversarially mutated packets without panicking, and must never
// deliver a payload that the claimed originator did not sign (the validity
// property of §2.3, checked under fuzz).

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

// mutate flips one random byte of a marshalled packet and re-parses it;
// parse failures yield nil.
func mutate(rng *rand.Rand, pkt *wire.Packet) *wire.Packet {
	buf := pkt.Marshal()
	buf[rng.Intn(len(buf))] ^= byte(1 + rng.Intn(255))
	out, err := wire.Unmarshal(buf)
	if err != nil {
		return nil
	}
	return out
}

func TestFuzzMutatedPacketsNeverPanicOrForge(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	legit := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
	rng := rand.New(rand.NewSource(1))

	// Seed packets of every kind.
	seeds := []*wire.Packet{
		h.dataFrom(1, 1, legit[0]),
		h.dataFrom(2, 9, legit[1]),
		h.gossipFrom(3, wire.MsgID{Origin: 1, Seq: 1}, wire.MsgID{Origin: 4, Seq: 2}),
		h.stateFrom(2, &wire.OverlayState{Active: true, Neighbors: []wire.NodeID{0, 1}}),
		{
			Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2, Origin: 1, Seq: 1,
			Sig: h.scheme.Sign(1, wire.HeaderSigBytes(wire.MsgID{Origin: 1, Seq: 1})),
		},
		{
			Kind: wire.KindFindMissing, Sender: 4, TTL: 2, Target: 2, Origin: 1, Seq: 1,
			Sig: h.scheme.Sign(1, wire.HeaderSigBytes(wire.MsgID{Origin: 1, Seq: 1})),
		},
	}

	for round := 0; round < 3000; round++ {
		src := seeds[rng.Intn(len(seeds))]
		var pkt *wire.Packet
		if rng.Intn(4) == 0 {
			pkt = src.Clone() // occasionally deliver the real thing
		} else {
			pkt = mutate(rng, src)
		}
		if pkt == nil {
			continue
		}
		h.p.HandlePacket(pkt) // must not panic
		if rng.Intn(50) == 0 {
			h.run(200 * time.Millisecond) // let timers interleave
		}
	}

	// Validity: every delivered id corresponds to a legitimately signed
	// payload (delivery implies the signature verified, and only the three
	// seed payloads were ever signed).
	for _, id := range h.delivered {
		if id.Origin != 1 && id.Origin != 2 {
			t.Fatalf("delivered message from unexpected origin %v", id)
		}
	}
}

func TestFuzzDeliveredPayloadMatchesSigned(t *testing.T) {
	// Stronger validity check: record payloads at delivery and confirm they
	// equal what the originator signed, bit for bit, under heavy mutation
	// pressure.
	var deliveredPayloads [][]byte
	h := newHarness(t, 0, testConfig())
	h.p.Stop() // rebuild with a payload-capturing deliver hook
	cfg := testConfig()
	h.p = New(cfg, Deps{
		ID:     0,
		Clock:  h.p.deps.Clock,
		Send:   func(pkt *wire.Packet) {},
		Scheme: h.scheme,
		Rand:   rand.New(rand.NewSource(2)),
		Deliver: func(origin wire.NodeID, id wire.MsgID, payload []byte) {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			deliveredPayloads = append(deliveredPayloads, cp)
		},
	})
	t.Cleanup(h.p.Stop)

	signed := []byte("the one true payload")
	base := h.dataFrom(1, 1, signed)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		pkt := mutate(rng, base)
		if pkt == nil {
			continue
		}
		h.p.HandlePacket(pkt)
	}
	h.p.HandlePacket(base.Clone())
	for _, p := range deliveredPayloads {
		if !bytes.Equal(p, signed) {
			t.Fatalf("delivered corrupted payload %q", p)
		}
	}
	if len(deliveredPayloads) != 1 {
		t.Fatalf("delivered %d times, want exactly once", len(deliveredPayloads))
	}
}

// Property: for any interleaving of a fixed packet set, the node accepts
// each message at most once and never accepts a forged one.
func TestQuickAcceptOncePerInterleaving(t *testing.T) {
	f := func(order []uint8) bool {
		h := newHarness(t, 0, testConfig())
		defer h.p.Stop()
		pkts := []*wire.Packet{
			h.dataFrom(1, 1, []byte("a")),
			h.dataFrom(1, 1, []byte("a")), // duplicate
			h.dataFrom(2, 1, []byte("b")),
			h.gossipFrom(3, wire.MsgID{Origin: 1, Seq: 1}),
			h.dataFrom(1, 2, []byte("c")),
		}
		forged := h.dataFrom(1, 3, []byte("evil"))
		forged.Payload[0] ^= 1
		pkts = append(pkts, forged)
		for _, idx := range order {
			h.p.HandlePacket(pkts[int(idx)%len(pkts)].Clone())
		}
		counts := map[wire.MsgID]int{}
		for _, id := range h.delivered {
			counts[id]++
		}
		for id, c := range counts {
			if c > 1 {
				return false
			}
			if id == (wire.MsgID{Origin: 1, Seq: 3}) {
				return false // the forged message must never be accepted
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary gossip batches never cause more requests than
// distinct (message, gossiper) pairs, plus the bounded retransmission
// budget of RetryMaxAttempts per distinct missing message.
func TestQuickRequestsBoundedByGossipPairs(t *testing.T) {
	f := func(entries []uint16) bool {
		if len(entries) > 40 {
			entries = entries[:40]
		}
		cfg := testConfig()
		h := newHarness(t, 0, cfg)
		defer h.p.Stop()
		pairs := map[[2]uint32]bool{}
		ids := map[wire.MsgID]bool{}
		for _, e := range entries {
			origin := wire.NodeID(e%4 + 1)
			seq := wire.Seq(e / 4 % 8)
			gossiper := wire.NodeID(e % 7)
			if gossiper == 0 {
				continue // self
			}
			h.p.HandlePacket(h.gossipFrom(gossiper, wire.MsgID{Origin: origin, Seq: seq}))
			pairs[[2]uint32{uint32(origin)<<16 | uint32(seq), uint32(gossiper)}] = true
			ids[wire.MsgID{Origin: origin, Seq: seq}] = true
		}
		h.run(cfg.RequestDelay*3 + cfg.RetryBackoffMax*time.Duration(cfg.RetryMaxAttempts+1) + time.Second)
		st := h.p.Stats()
		if int(st.RetriesSent) > len(ids)*cfg.RetryMaxAttempts {
			return false // retry budget exceeded
		}
		return int(st.RequestsSent-st.RetriesSent) <= len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzHandlePacket is the native fuzz target (run continuously with
// `go test -fuzz=FuzzHandlePacket ./internal/core`): arbitrary bytes are
// decoded by the wire codec and fed straight into a fresh protocol instance,
// which must neither panic nor deliver anything it could not verify. The
// seed corpus covers every packet kind with valid signatures, so the
// mutator starts from deep inside the handler rather than at codec
// rejections.
func FuzzHandlePacket(f *testing.F) {
	seedScheme := sig.NewHMAC(16, 7)
	signData := func(from wire.NodeID, seq wire.Seq, payload []byte) *wire.Packet {
		id := wire.MsgID{Origin: from, Seq: seq}
		return &wire.Packet{
			Kind: wire.KindData, Sender: from, TTL: 1, Target: wire.NoNode,
			Origin: from, Seq: seq, Payload: payload,
			Sig: seedScheme.Sign(uint32(from), wire.DataSigBytes(id, payload)),
		}
	}
	f.Add([]byte{})
	f.Add(signData(1, 1, []byte("alpha")).Marshal())
	f.Add(signData(2, 9, []byte("bravo")).Marshal())
	id := wire.MsgID{Origin: 1, Seq: 1}
	f.Add((&wire.Packet{
		Kind: wire.KindGossip, Sender: 3, TTL: 1, Target: wire.NoNode, Origin: wire.NoNode,
		Gossip: []wire.GossipEntry{{ID: id, Sig: seedScheme.Sign(1, wire.HeaderSigBytes(id))}},
	}).Marshal())
	f.Add((&wire.Packet{
		Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2, Origin: 1, Seq: 1,
		Sig: seedScheme.Sign(1, wire.HeaderSigBytes(id)),
	}).Marshal())
	f.Add((&wire.Packet{
		Kind: wire.KindFindMissing, Sender: 4, TTL: 2, Target: 2, Origin: 1, Seq: 1,
		Sig: seedScheme.Sign(1, wire.HeaderSigBytes(id)),
	}).Marshal())
	f.Add((&wire.Packet{
		Kind: wire.KindOverlayState, Sender: 2, TTL: 1, Target: wire.NoNode, Origin: wire.NoNode,
		State: &wire.OverlayState{Active: true, Neighbors: []wire.NodeID{0, 1}},
	}).Marshal())

	// Adversary shapes from the spam/replay attackers (internal/byzantine):
	// flooder spam at a high sequence base, a replayed packet re-stamped
	// with the replayer's own sender id, forged junk signatures from origins
	// no PKI ever issued, and an oversized gossip batch that must be trimmed
	// by GossipMaxEntriesRx rather than bought at face value.
	f.Add(signData(2, 2<<20, []byte("flood")).Marshal())
	replayed := signData(1, 1, []byte("alpha"))
	replayed.Sender = 7
	f.Add(replayed.Marshal())
	forged := wire.MsgID{Origin: 200, Seq: 3}
	f.Add((&wire.Packet{
		Kind: wire.KindGossip, Sender: 6, TTL: 1, Target: wire.NoNode, Origin: wire.NoNode,
		Gossip: []wire.GossipEntry{{ID: forged, Sig: []byte("junkjunkjunkjunk")}},
	}).Marshal())
	f.Add((&wire.Packet{
		Kind: wire.KindData, Sender: 6, TTL: 1, Target: wire.NoNode,
		Origin: forged.Origin, Seq: forged.Seq, Payload: []byte("junk"),
		Sig: []byte("junkjunkjunkjunk"),
	}).Marshal())
	big := &wire.Packet{
		Kind: wire.KindGossip, Sender: 8, TTL: 1, Target: wire.NoNode, Origin: wire.NoNode,
	}
	for i := 0; i < 96; i++ {
		bid := wire.MsgID{Origin: wire.NodeID(i % 4), Seq: wire.Seq(i)}
		big.Gossip = append(big.Gossip, wire.GossipEntry{
			ID: bid, Sig: seedScheme.Sign(uint32(bid.Origin), wire.HeaderSigBytes(bid)),
		})
	}
	f.Add(big.Marshal())

	f.Fuzz(func(t *testing.T, data []byte) {
		pkt, err := wire.Unmarshal(data)
		if err != nil {
			return
		}
		h := newHarness(t, 0, testConfig())
		h.p.HandlePacket(pkt)
		h.p.HandlePacket(pkt.Clone()) // duplicates must be harmless too
		h.run(2 * time.Second)        // let any armed timers fire
		for _, got := range h.delivered {
			// Only the harness scheme's key 1/2 seeds carry valid payload
			// signatures; anything else the codec can decode must verify or
			// be rejected, so a delivery from another origin is a forgery.
			if got.Origin != 1 && got.Origin != 2 {
				t.Fatalf("delivered unverifiable message %v", got)
			}
		}
	})
}
