package core

import (
	"testing"
	"time"

	"bbcast/internal/wire"
)

func stabilityConfig() Config {
	cfg := testConfig()
	cfg.StabilityPurge = true
	cfg.StabilityThreshold = 2
	cfg.StabilityMinAge = 2 * time.Second
	cfg.PurgeTimeout = time.Hour // only stability can purge in these tests
	cfg.PurgeInterval = 500 * time.Millisecond
	return cfg
}

func TestStabilityPurgeAfterConfirmations(t *testing.T) {
	h := newHarness(t, 0, stabilityConfig())
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	id := pkt.ID()
	// Two distinct neighbours advertise the message: it is stable.
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.p.HandlePacket(h.gossipFrom(3, id))
	h.run(3 * time.Second)
	if h.p.Holds(id) {
		t.Fatal("stable message not purged early")
	}
	held, tombs := h.p.StoreSize()
	if held != 0 || tombs != 1 {
		t.Fatalf("store = %d held, %d tombstones", held, tombs)
	}
	// Duplicate filtering survives the purge.
	h.p.HandlePacket(pkt.Clone())
	if len(h.delivered) != 1 {
		t.Fatal("purged message re-delivered")
	}
}

func TestStabilityPurgeNeedsThreshold(t *testing.T) {
	h := newHarness(t, 0, stabilityConfig())
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	h.p.HandlePacket(h.gossipFrom(2, pkt.ID())) // only one confirmation
	h.run(5 * time.Second)
	if !h.p.Holds(pkt.ID()) {
		t.Fatal("message purged below the stability threshold")
	}
}

func TestStabilityPurgeRespectsMinAge(t *testing.T) {
	h := newHarness(t, 0, stabilityConfig())
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	h.p.HandlePacket(h.gossipFrom(2, pkt.ID()))
	h.p.HandlePacket(h.gossipFrom(3, pkt.ID()))
	h.run(1 * time.Second) // below StabilityMinAge (2 s)
	if !h.p.Holds(pkt.ID()) {
		t.Fatal("message purged before the minimum age")
	}
}

func TestStabilityRepeatGossiperCountsOnce(t *testing.T) {
	h := newHarness(t, 0, stabilityConfig())
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	id := pkt.ID()
	for i := 0; i < 5; i++ {
		h.p.HandlePacket(h.gossipFrom(2, id)) // same gossiper over and over
	}
	h.run(5 * time.Second)
	if !h.p.Holds(id) {
		t.Fatal("repeated gossiper counted as multiple holders")
	}
}

func TestStabilityDisabledByDefault(t *testing.T) {
	cfg := testConfig()
	cfg.PurgeTimeout = time.Hour
	h := newHarness(t, 0, cfg)
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	id := pkt.ID()
	for n := wire.NodeID(2); n < 10; n++ {
		h.p.HandlePacket(h.gossipFrom(n, id))
	}
	h.run(20 * time.Second)
	if !h.p.Holds(id) {
		t.Fatal("stability purging fired though disabled")
	}
}

func TestStabilityDefaultThresholdScalesWithNeighbors(t *testing.T) {
	cfg := stabilityConfig()
	cfg.StabilityThreshold = 0 // derive from neighbour count (min 3)
	h := newHarness(t, 0, cfg)
	pkt := h.dataFrom(1, 1, []byte("m"))
	h.p.HandlePacket(pkt)
	id := pkt.ID()
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.p.HandlePacket(h.gossipFrom(3, id))
	h.run(3 * time.Second)
	if !h.p.Holds(id) {
		t.Fatal("purged below the minimum default threshold of 3")
	}
	h.p.HandlePacket(h.gossipFrom(4, id))
	h.run(2 * time.Second)
	if h.p.Holds(id) {
		t.Fatal("not purged at the default threshold")
	}
}
