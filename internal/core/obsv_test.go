package core

// Observer fan-out tests: every protocol event must be emitted exactly once
// at its source, every member of an obsv.Multi must see the identical event
// stream, and the guarantee must hold under the same adversarial packet
// pressure as the fuzz tests (mutated fuzz-seed corpus).

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bbcast/internal/env"
	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/sig"
	"bbcast/internal/sim"
	"bbcast/internal/wire"
)

// recObserver records every event it sees, both as counters per event class
// and as an ordered log for cross-member comparison.
type recObserver struct {
	lines       []string
	rx          int
	accepts     []wire.MsgID
	roles       []overlay.Role
	sigs        int
	queues      map[obsv.Queue]int
	suspRaised  int
	suspCleared int
	suppressed  int
}

func newRecObserver() *recObserver {
	return &recObserver{queues: make(map[obsv.Queue]int)}
}

func (r *recObserver) log(format string, args ...any) {
	r.lines = append(r.lines, fmt.Sprintf(format, args...))
}

func (r *recObserver) OnPacketTx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	r.log("tx %s %d %s %v cause=%s hops=%d", at, node, kind, id, meta.Cause, meta.Hops)
}

func (r *recObserver) OnPacketRx(at time.Duration, node wire.NodeID, kind wire.Kind, id wire.MsgID, meta wire.Meta) {
	r.rx++
	r.log("rx %s %d %s %v cause=%s", at, node, kind, id, meta.Cause)
}

func (r *recObserver) OnInject(at time.Duration, node wire.NodeID, id wire.MsgID) {
	r.log("inject %s %d %v", at, node, id)
}

func (r *recObserver) OnAccept(at time.Duration, node wire.NodeID, id wire.MsgID, payload []byte, meta wire.Meta) {
	r.accepts = append(r.accepts, id)
	r.log("accept %s %d %v %q cause=%s hops=%d rec=%v", at, node, id, payload, meta.Cause, meta.Hops, meta.Recovered)
}

func (r *recObserver) OnForwardSuppressed(at time.Duration, node wire.NodeID, id wire.MsgID, meta wire.Meta) {
	r.suppressed++
	r.log("suppress %s %d %v cause=%s", at, node, id, meta.Cause)
}

func (r *recObserver) OnRoleChange(at time.Duration, node wire.NodeID, role overlay.Role) {
	r.roles = append(r.roles, role)
	r.log("role %s %d %s", at, node, role)
}

func (r *recObserver) OnSuspicion(at time.Duration, node, subject wire.NodeID, detector obsv.Detector, raised bool) {
	if raised {
		r.suspRaised++
	} else {
		r.suspCleared++
	}
	r.log("susp %s %d %d %s %v", at, node, subject, detector, raised)
}

func (r *recObserver) OnSigVerify(at time.Duration, node wire.NodeID, ok bool, took time.Duration) {
	r.sigs++
	// The duration is wall clock and would differ between runs, so it is
	// deliberately left out of the comparable log line.
	r.log("sig %s %d %v", at, node, ok)
}

func (r *recObserver) OnQueueDepth(at time.Duration, node wire.NodeID, queue obsv.Queue, depth int) {
	r.queues[queue]++
	r.log("queue %s %d %s %d", at, node, queue, depth)
}

func (r *recObserver) OnAdmission(at time.Duration, node wire.NodeID, event obsv.AdmissionEvent) {
	r.log("admit %s %d %s", at, node, event)
}

func (r *recObserver) OnAdaptation(at time.Duration, node wire.NodeID, timer obsv.AdaptiveTimer, old, new time.Duration) {
	r.log("adapt %s %d %s %s→%s", at, node, timer, old, new)
}

func (r *recObserver) OnRetry(at time.Duration, node wire.NodeID, id wire.MsgID, attempt int, abandoned bool) {
	r.log("retry %s %d %v %d %v", at, node, id, attempt, abandoned)
}

func (r *recObserver) OnSync(at time.Duration, node, peer wire.NodeID, event obsv.SyncEvent, entries, bytes int) {
	r.log("sync %s %d %d %s %d %d", at, node, peer, event, entries, bytes)
}

func (r *recObserver) OnRejoin(at time.Duration, node wire.NodeID, restored int) {
	r.log("rejoin %s %d %d", at, node, restored)
}

// newObsHarness is newHarness with an observer attached.
func newObsHarness(t *testing.T, selfID wire.NodeID, cfg Config, obs obsv.Observer) *harness {
	t.Helper()
	h := &harness{t: t, eng: sim.New(1), scheme: sig.NewHMAC(16, 7)}
	h.p = New(cfg, Deps{
		ID:     selfID,
		Clock:  env.SimClock{Eng: h.eng},
		Send:   func(pkt *wire.Packet) { h.sent = append(h.sent, pkt) },
		Scheme: h.scheme,
		Rand:   h.eng.SubRand(uint64(selfID)),
		Obs:    obs,
		Deliver: func(origin wire.NodeID, id wire.MsgID, payload []byte) {
			h.delivered = append(h.delivered, id)
		},
	})
	t.Cleanup(h.p.Stop)
	return h
}

func assertRecordersAgree(t *testing.T, a, b *recObserver) {
	t.Helper()
	if len(a.lines) != len(b.lines) {
		t.Fatalf("fan-out members diverged: %d vs %d events", len(a.lines), len(b.lines))
	}
	for i := range a.lines {
		if a.lines[i] != b.lines[i] {
			t.Fatalf("fan-out members diverged at %d: %q vs %q", i, a.lines[i], b.lines[i])
		}
	}
}

func TestObserverExactlyOncePerProtocolEvent(t *testing.T) {
	rec, twin := newRecObserver(), newRecObserver()
	h := newObsHarness(t, 0, testConfig(), obsv.Multi(rec, twin))

	// One valid data packet: exactly one rx, one sig verify, one accept.
	data := h.dataFrom(1, 1, []byte("alpha"))
	h.p.HandlePacket(data)
	if rec.rx != 1 || rec.sigs != 1 || len(rec.accepts) != 1 {
		t.Fatalf("after first data: rx=%d sigs=%d accepts=%d, want 1/1/1",
			rec.rx, rec.sigs, len(rec.accepts))
	}
	// The duplicate is received (an rx event) but must not re-accept; the
	// redundant frame is reported as suppressed exactly once.
	h.p.HandlePacket(data.Clone())
	if rec.rx != 2 || len(rec.accepts) != 1 {
		t.Fatalf("after duplicate: rx=%d accepts=%d, want 2/1", rec.rx, len(rec.accepts))
	}
	if rec.suppressed != 1 {
		t.Fatalf("after duplicate: suppressed=%d, want 1", rec.suppressed)
	}
	// The node's own broadcast is delivered locally (DeliverOwn) and must
	// emit exactly one accept too.
	own := h.p.Broadcast([]byte("mine"))
	if len(rec.accepts) != 2 || rec.accepts[1] != own {
		t.Fatalf("own broadcast accepts = %v, want [.., %v]", rec.accepts, own)
	}
	// A packet claiming to be from the node itself is ignored before any
	// event is emitted.
	self := h.dataFrom(1, 2, []byte("spoof"))
	self.Sender = 0
	h.p.HandlePacket(self)
	if rec.rx != 2 {
		t.Fatalf("self-sender packet emitted rx (rx=%d)", rec.rx)
	}
	// Accept events mirror the Deliver upcall one-for-one.
	if len(h.delivered) != len(rec.accepts) {
		t.Fatalf("delivered %d but observed %d accepts", len(h.delivered), len(rec.accepts))
	}
	assertRecordersAgree(t, rec, twin)
}

func TestObserverRoleAndQueueEvents(t *testing.T) {
	rec, twin := newRecObserver(), newRecObserver()
	h := newObsHarness(t, 0, testConfig(), obsv.Multi(rec, twin))
	h.run(10 * time.Second) // let elections and maintenance run

	if len(rec.roles) == 0 {
		t.Fatal("no role change observed for a lone node election")
	}
	for i := 1; i < len(rec.roles); i++ {
		if rec.roles[i] == rec.roles[i-1] {
			t.Fatalf("role change %d repeated %s: transitions must be edges, not levels",
				i, rec.roles[i])
		}
	}
	if last := rec.roles[len(rec.roles)-1]; last != h.p.Role() {
		t.Fatalf("last observed role %s != protocol role %s", last, h.p.Role())
	}
	// Every maintenance tick samples all four queues the same number of
	// times.
	n := rec.queues[obsv.QueueStore]
	if n == 0 {
		t.Fatal("no queue-depth samples after 10s of maintenance")
	}
	for _, q := range []obsv.Queue{obsv.QueueMissing, obsv.QueueNeighbors, obsv.QueueExpectations} {
		if rec.queues[q] != n {
			t.Fatalf("queue %s sampled %d times, store %d: samples must come in full sets",
				q, rec.queues[q], n)
		}
	}
	assertRecordersAgree(t, rec, twin)
}

func TestObserverSuspicionRaiseAndClear(t *testing.T) {
	rec, twin := newRecObserver(), newRecObserver()
	cfg := testConfig()
	h := newObsHarness(t, 0, cfg, obsv.Multi(rec, twin))

	// Gossip from 3 advertises messages it never supplies: each unmet MUTE
	// expectation is a strike, and Threshold strikes raise a suspicion.
	for seq := wire.Seq(1); int(seq) <= cfg.Mute.Threshold; seq++ {
		h.p.HandlePacket(h.gossipFrom(3, wire.MsgID{Origin: 1, Seq: seq}))
	}
	h.run(cfg.Mute.Timeout + cfg.RequestDelay + 5*time.Second)
	if rec.suspRaised == 0 {
		t.Fatal("no suspicion raised for unmet MUTE expectations")
	}
	// Unrefreshed suspicions age out, emitting a clear transition.
	h.run(cfg.Mute.SuspicionTTL + 2*cfg.Mute.AgeInterval)
	if rec.suspCleared == 0 {
		t.Fatal("aged-out suspicion emitted no clear event")
	}
	assertRecordersAgree(t, rec, twin)
}

// TestObserverExactlyOnceUnderFuzzCorpus replays the fuzz-seed corpus
// (every packet kind, mutated under the same rng schedule as the fuzz test)
// and checks the structural exactly-once guarantees: one rx per handled
// foreign packet, accepts exactly mirroring deliveries, and identical event
// streams on both fan-out members.
func TestObserverExactlyOnceUnderFuzzCorpus(t *testing.T) {
	rec, twin := newRecObserver(), newRecObserver()
	h := newObsHarness(t, 0, testConfig(), obsv.Multi(rec, twin))
	legit := [][]byte{[]byte("alpha"), []byte("bravo"), []byte("charlie")}
	rng := rand.New(rand.NewSource(1))

	seeds := []*wire.Packet{
		h.dataFrom(1, 1, legit[0]),
		h.dataFrom(2, 9, legit[1]),
		h.gossipFrom(3, wire.MsgID{Origin: 1, Seq: 1}, wire.MsgID{Origin: 4, Seq: 2}),
		h.stateFrom(2, &wire.OverlayState{Active: true, Neighbors: []wire.NodeID{0, 1}}),
		{
			Kind: wire.KindRequest, Sender: 3, TTL: 1, Target: 2, Origin: 1, Seq: 1,
			Sig: h.scheme.Sign(1, wire.HeaderSigBytes(wire.MsgID{Origin: 1, Seq: 1})),
		},
		{
			Kind: wire.KindFindMissing, Sender: 4, TTL: 2, Target: 2, Origin: 1, Seq: 1,
			Sig: h.scheme.Sign(1, wire.HeaderSigBytes(wire.MsgID{Origin: 1, Seq: 1})),
		},
	}

	wantRx := 0
	for round := 0; round < 1500; round++ {
		src := seeds[rng.Intn(len(seeds))]
		var pkt *wire.Packet
		if rng.Intn(4) == 0 {
			pkt = src.Clone()
		} else {
			pkt = mutate(rng, src)
		}
		if pkt == nil {
			continue
		}
		if pkt.Sender != 0 { // self-sender packets are dropped pre-rx
			wantRx++
		}
		h.p.HandlePacket(pkt)
		if rng.Intn(50) == 0 {
			h.run(200 * time.Millisecond)
		}
	}

	if rec.rx != wantRx {
		t.Fatalf("rx events = %d, want %d (one per handled foreign packet)", rec.rx, wantRx)
	}
	if len(rec.accepts) != len(h.delivered) {
		t.Fatalf("accept events = %d, deliveries = %d", len(rec.accepts), len(h.delivered))
	}
	for i, id := range h.delivered {
		if rec.accepts[i] != id {
			t.Fatalf("accept %d = %v, delivered %v", i, rec.accepts[i], id)
		}
	}
	seen := map[wire.MsgID]int{}
	for _, id := range rec.accepts {
		seen[id]++
		if seen[id] > 1 {
			t.Fatalf("message %v accepted %d times", id, seen[id])
		}
	}
	if rec.sigs == 0 {
		t.Fatal("no signature-verify events under the fuzz corpus")
	}
	assertRecordersAgree(t, rec, twin)
}
