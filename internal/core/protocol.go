package core

import (
	"bytes"
	"math/rand"
	"time"

	"bbcast/internal/env"
	"bbcast/internal/fd"
	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/persist"
	"bbcast/internal/sig"
	"bbcast/internal/wire"
)

// Deps are the host-provided dependencies of a Protocol.
type Deps struct {
	// ID is this node's identifier.
	ID wire.NodeID
	// Clock provides time and timers (simulated or real).
	Clock env.Clock
	// Send puts a packet on the air (one physical hop). The protocol sets
	// pkt.Sender. Hosts route this through their MAC/transport.
	Send func(pkt *wire.Packet)
	// Scheme signs and verifies.
	Scheme sig.Scheme
	// Rand is this node's deterministic random stream.
	Rand *rand.Rand
	// Deliver is the application accept() upcall: called exactly once per
	// accepted message.
	Deliver func(origin wire.NodeID, id wire.MsgID, payload []byte)
	// Obs, if non-nil, observes protocol events (rx, accept, role changes,
	// suspicions, signature verifications, queue depths). Transmissions are
	// observed by the host at the transport layer, not here.
	Obs obsv.Observer
	// Store, if non-nil, is the durable-state layer (Config.Persist): the
	// protocol records its sequence counter, delivered digests and suspicion
	// transitions into it and restores them in New and Rejoin.
	Store *persist.Store
}

// Accept routes one application-level acceptance through the upcall and the
// observer — the single choke point used by every protocol implementation
// (the broadcast protocol and the comparison baselines). meta is the causal
// metadata of the frame that completed delivery (zero Hops and CauseOrigin
// for an originator's own acceptance).
func (d *Deps) Accept(id wire.MsgID, payload []byte, meta wire.Meta) {
	if d.Deliver != nil {
		d.Deliver(id.Origin, id, payload)
	}
	if d.Store != nil {
		digest := meta.Digest
		if digest == 0 {
			digest = wire.Digest(payload)
		}
		d.Store.RecordDelivered(id, digest)
	}
	if d.Obs != nil {
		d.Obs.OnAccept(d.Clock.Now(), d.ID, id, payload, meta)
	}
}

// ObserveRx reports one received frame to the observer.
func (d *Deps) ObserveRx(pkt *wire.Packet) {
	if d.Obs != nil {
		d.Obs.OnPacketRx(d.Clock.Now(), d.ID, pkt.Kind, pkt.ID(), pkt.Meta)
	}
}

// ObserveSuppressed reports one redundant data frame that was suppressed
// instead of forwarded — the shared choke point (and obsvonce designated
// source) for OnForwardSuppressed across the protocol and the baselines.
func (d *Deps) ObserveSuppressed(id wire.MsgID, meta wire.Meta) {
	if d.Obs != nil {
		d.Obs.OnForwardSuppressed(d.Clock.Now(), d.ID, id, meta)
	}
}

// msgState tracks one known message.
type msgState struct {
	payload    []byte
	dataSig    []byte // originator signature over the data
	headerSig  []byte // originator signature over the header (gossip proof)
	receivedAt time.Duration
	gossiped   bool          // advertised at least once since receipt
	purged     bool          // payload dropped; id retained as duplicate-filter tombstone
	purgedAt   time.Duration // when the payload was dropped (quiescence GC input)
	// holders are the distinct neighbours seen advertising this message
	// (stability detection input).
	//bbvet:bounded-by maxHolders noteHolder refuses growth past the cap; total is maxHolders×MaxStore
	holders map[wire.NodeID]bool

	// Causal lineage of the local copy: the frame it arrived on, its
	// data-path hop count, whether gossip recovery repaired any hop of its
	// journey (sticky downstream), and the payload digest. All zero for a
	// locally originated message.
	viaFrame     uint64
	viaHops      uint32
	viaRecovered bool
	digest       uint64
}

// Per-entry side-table caps. These small maps hang off entries of the
// capped protocol tables, so the product with the table's own cap bounds the
// total state an adversary can grow.
const (
	// maxHolders caps the distinct advertisers tracked per stored message.
	// Stability purging needs only "enough distinct confirmations", so
	// dropping the excess loses nothing.
	maxHolders = 64
	// maxMissGossipers caps the distinct gossipers tracked (and asked) per
	// missing message. Later gossip rounds retry recovery naturally, so
	// refusing to track a 65th avenue costs only latency under an absurdly
	// rich neighbourhood.
	maxMissGossipers = 64
	// maxReqCounters caps the distinct requesters counted per request
	// record. A requester beyond the cap is served but not counted; VERBOSE
	// indictment needs repeat offenders, which by definition are counted.
	maxReqCounters = 64
)

// noteHolder records that `from` advertised the message.
func (st *msgState) noteHolder(from wire.NodeID) {
	if st.holders == nil {
		st.holders = make(map[wire.NodeID]bool, 4)
	}
	if len(st.holders) < maxHolders {
		st.holders[from] = true
	}
}

// pendingMiss tracks a message known (from gossip) but not yet received.
// Every distinct gossiper is asked once (after RequestDelay); beyond that, a
// bounded retransmission chain re-requests with exponential backoff up to
// RetryMaxAttempts times (rotating through the known gossipers) before
// giving up explicitly — after which subsequent gossip rounds still retry
// the recovery naturally.
type pendingMiss struct {
	headerSig []byte
	//bbvet:bounded-by maxMissGossipers noteMissing refuses growth past the cap; total is maxMissGossipers×MaxMissing
	gossipers  map[wire.NodeID]int // advertiser → requests sent to it so far
	cancels    []func()
	firstHeard time.Duration
	attempts   int  // retransmissions sent so far (first requests excluded)
	retryArmed bool // the retransmission chain has been started
	// srcFrame is the gossip frame that first advertised the gap: requests
	// and retries cite it as their causal parent.
	srcFrame uint64
}

// neighborState is what we know about one direct neighbour. It doubles as
// the per-sender admission state: keeping the token bucket here means the
// rate-limiter's memory is bounded by the same cap as the neighbour table.
type neighborState struct {
	lastHeard time.Duration
	hits      int
	state     *wire.OverlayState // last verified report, nil before the first

	tokens     float64       // admission token bucket (packets)
	lastRefill time.Duration // last bucket refill instant
}

// admitted reports whether the neighbour has proven itself with more than
// one packet. Debouncing keeps marginal fringe links (whose beacons arrive
// sporadically) from churning the overlay computation.
func (n *neighborState) admitted() bool { return n.hits >= 2 }

// Stats counts protocol-level events for analysis.
type Stats struct {
	Accepted         uint64
	Duplicates       uint64
	BadSignatures    uint64
	Forwarded        uint64
	GossipsSent      uint64
	RequestsSent     uint64
	FindsSent        uint64
	RecoveredByData  uint64 // requests answered with data by this node
	RateLimited      uint64 // packets shed by the per-sender admission bucket
	DedupSkips       uint64 // signature verifications avoided by byte-equal dedup
	Evictions        uint64 // state entries evicted/rejected to stay under caps
	Adaptations      uint64 // committed adaptive-timer changes
	RetriesSent      uint64 // explicit retransmissions of missing-message requests
	RetriesAbandoned uint64 // retransmission chains that hit the attempt cap

	Rejoins            uint64 // amnesiac re-initializations (Rejoin calls)
	SyncReqsSent       uint64 // catch-up SYNC-REQ packets sent
	SyncEntriesServed  uint64 // entries served in SYNC-RESP packets
	SyncEntriesApplied uint64 // entries accepted from SYNC-RESP packets
	SyncAbandoned      uint64 // catch-up rounds abandoned at the attempt cap
}

// Protocol is one node's instance of the Byzantine broadcast protocol.
type Protocol struct {
	cfg  Config
	deps Deps

	seq wire.Seq

	store   map[wire.MsgID]*msgState
	missing map[wire.MsgID]*pendingMiss

	neighbors map[wire.NodeID]*neighborState
	// linkQual is the per-neighbour link-quality estimator; entries are
	// created only for senders present in the neighbour table and deleted
	// alongside neighbour expiry/eviction, so the same cap bounds both.
	linkQual map[wire.NodeID]*linkEstimate
	// gossipPeriod is the current (possibly adapted) lazycast period; the
	// gossip scheduler re-reads it every round.
	gossipPeriod time.Duration

	role        overlay.Role
	roleCand    overlay.Role
	roleRun     int
	roleChanges uint64
	maint       overlay.Maintainer

	mute    *fd.Mute
	verbose *fd.Verbose
	trust   *fd.Trust

	reqSeen map[wire.MsgID]*reqRecord // request counts per requester, TTL-bound

	// Catch-up sync state: syncArmed is set from rejoin (or a restored-state
	// start) until the node is caught up or gives up; syncAttempts counts
	// rounds without progress toward the SyncMaxAttempts cap.
	syncArmed    bool
	syncAttempts int

	stats   Stats
	stops   []func()
	stopped bool
}

// New builds a protocol instance and starts its periodic tasks (gossip,
// maintenance, purge). Call Stop to halt them.
func New(cfg Config, deps Deps) *Protocol {
	p := &Protocol{
		cfg:          cfg,
		deps:         deps,
		store:        make(map[wire.MsgID]*msgState),
		missing:      make(map[wire.MsgID]*pendingMiss),
		neighbors:    make(map[wire.NodeID]*neighborState),
		linkQual:     make(map[wire.NodeID]*linkEstimate),
		gossipPeriod: cfg.GossipInterval,
		role:         overlay.Passive,
		maint:        overlay.New(cfg.Overlay),
		reqSeen:      make(map[wire.MsgID]*reqRecord),
	}
	p.initDetectors()
	if restored := p.restoreDurable(); restored > 0 && cfg.CatchUpSync {
		// A daemon restarting over a non-empty durable store missed traffic
		// while down, exactly like an in-sim rejoiner.
		p.armCatchUp()
	}

	if cfg.GossipInterval > 0 {
		// The gossip period is dynamic: the adaptive controller rewrites
		// p.gossipPeriod and the scheduler re-reads it each round.
		p.schedulePeriodicFunc(func() time.Duration { return p.gossipPeriod }, cfg.GossipJitter, p.gossipTick)
	}
	p.schedulePeriodic(cfg.MaintenanceInterval, cfg.MaintenanceJitter, p.maintenanceTick)
	if cfg.PurgeInterval > 0 {
		p.schedulePeriodic(cfg.PurgeInterval, 0, p.purgeTick)
	}
	if deps.Store != nil {
		// Jitterless so attaching a store draws nothing from the RNG: runs
		// with persistence off keep their exact draw schedule.
		p.schedulePeriodic(cfg.snapshotEvery(), 0, p.snapshotTick)
	}
	return p
}

// initDetectors (re)builds the MUTE, VERBOSE and TRUST detectors and wires
// their transition hooks to the observer and the durable store. Rejoin calls
// it again: an amnesiac node restarts with empty volatile suspicion state.
func (p *Protocol) initDetectors() {
	now := p.deps.Clock.Now
	p.mute = fd.NewMute(now, p.cfg.Mute)
	p.verbose = fd.NewVerbose(now, p.cfg.Verbose)
	p.trust = fd.NewTrust(now, p.cfg.Trust, p.mute, p.verbose)
	obs, store, self := p.deps.Obs, p.deps.Store, p.deps.ID
	p.mute.OnSuspect = func(id wire.NodeID, suspected bool) {
		if store != nil {
			store.RecordSuspicion(persist.DetectorMute, id, suspected)
		}
		if obs != nil {
			obs.OnSuspicion(now(), self, id, obsv.DetectorMute, suspected)
		}
	}
	p.verbose.OnSuspect = func(id wire.NodeID, suspected bool) {
		if store != nil {
			store.RecordSuspicion(persist.DetectorVerbose, id, suspected)
		}
		if obs != nil {
			obs.OnSuspicion(now(), self, id, obsv.DetectorVerbose, suspected)
		}
	}
	p.trust.OnDirect = func(id wire.NodeID, _ fd.Reason) {
		if store != nil {
			store.RecordSuspicion(persist.DetectorTrust, id, true)
		}
		if obs != nil {
			obs.OnSuspicion(now(), self, id, obsv.DetectorTrust, true)
		}
	}
}

// snapshotTick compacts the durable store: one snapshot write replaces the
// accumulated record log.
func (p *Protocol) snapshotTick() {
	if p.deps.Store != nil {
		//bbvet:errflow best-effort periodic snapshot: Store latches the failure in Err and the next health check surfaces it
		_ = p.deps.Store.Snapshot()
	}
}

// Stop halts all periodic tasks. The protocol must not be used afterwards.
func (p *Protocol) Stop() {
	p.stopped = true
	for _, stop := range p.stops {
		stop()
	}
	p.stops = nil
}

// ID returns the node identifier.
func (p *Protocol) ID() wire.NodeID { return p.deps.ID }

// Role returns the node's current overlay role.
func (p *Protocol) Role() overlay.Role { return p.role }

// InOverlay reports whether the node currently considers itself an overlay
// node.
func (p *Protocol) InOverlay() bool { return p.role.Active() }

// Stats returns a snapshot of protocol counters.
func (p *Protocol) Stats() Stats { return p.stats }

// Trust exposes the TRUST detector (read-mostly; used by tests and tools).
func (p *Protocol) Trust() *fd.Trust { return p.trust }

// NeighborCount reports the current neighbour-table size.
func (p *Protocol) NeighborCount() int { return len(p.neighbors) }

// GossipPeriod reports the current (possibly adapted) lazycast period.
func (p *Protocol) GossipPeriod() time.Duration { return p.gossipPeriod }

// MuteTimeout reports the current (possibly adapted) MUTE expectation
// timeout.
func (p *Protocol) MuteTimeout() time.Duration { return p.mute.Timeout() }

// LinkQualCount reports the number of tracked link-quality estimator entries
// (test and invariant input).
func (p *Protocol) LinkQualCount() int { return len(p.linkQual) }

// Holds reports whether the node has (unpurged) message id.
func (p *Protocol) Holds(id wire.MsgID) bool {
	st, ok := p.store[id]
	return ok && !st.purged
}

// StoreSize reports the number of held payloads and retained tombstones —
// the buffer the paper bounds by max_timeout·(n−1)·δ (§3.4.1).
func (p *Protocol) StoreSize() (held, tombstones int) {
	// Unsorted range is fine: counting is commutative, so iteration order
	// cannot leak into the returned totals or anywhere else.
	for _, st := range p.store {
		if st.purged {
			tombstones++
		} else {
			held++
		}
	}
	return held, tombstones
}

func (p *Protocol) schedulePeriodic(period, jitter time.Duration, fn func()) {
	if period <= 0 {
		return
	}
	p.schedulePeriodicFunc(func() time.Duration { return period }, jitter, fn)
}

// schedulePeriodicFunc is schedulePeriodic with the period re-read each
// round, so adaptive timers take effect from the next reschedule.
func (p *Protocol) schedulePeriodicFunc(period func() time.Duration, jitter time.Duration, fn func()) {
	stopped := false
	var cancel func()
	var schedule func()
	schedule = func() {
		d := period()
		if jitter > 0 {
			d += time.Duration(p.deps.Rand.Int63n(int64(2*jitter))) - jitter
		}
		if d <= 0 {
			d = 1
		}
		cancel = p.deps.Clock.After(d, func() {
			if stopped || p.stopped {
				return
			}
			fn()
			schedule()
		})
	}
	schedule()
	p.stops = append(p.stops, func() {
		stopped = true
		if cancel != nil {
			cancel()
		}
	})
}

// Broadcast originates a new application message (§3.2 lines 1–4): sign it,
// one-hop broadcast the data, and start gossiping its header signature.
// It returns the message id.
func (p *Protocol) Broadcast(payload []byte) wire.MsgID {
	p.seq++
	if p.deps.Store != nil {
		// Persist the counter before the id escapes: a node that crashes and
		// recovers must never reuse a sequence number (readers treat a reused
		// (origin, seq) as a duplicate and would drop the new message).
		p.deps.Store.RecordSeq(uint32(p.seq))
	}
	id := wire.MsgID{Origin: p.deps.ID, Seq: p.seq}
	body := make([]byte, len(payload))
	copy(body, payload)
	dataSig := p.deps.Scheme.Sign(uint32(p.deps.ID), wire.DataSigBytes(id, body))
	headerSig := p.deps.Scheme.Sign(uint32(p.deps.ID), wire.HeaderSigBytes(id))
	digest := wire.Digest(body)
	p.enforceStoreCap()
	p.store[id] = &msgState{
		payload:    body,
		dataSig:    dataSig,
		headerSig:  headerSig,
		receivedAt: p.deps.Clock.Now(),
		digest:     digest,
	}
	p.send(&wire.Packet{
		Kind:    wire.KindData,
		TTL:     1,
		Target:  wire.NoNode,
		Origin:  id.Origin,
		Seq:     id.Seq,
		Payload: body,
		Sig:     dataSig,
		Meta:    wire.Meta{Hops: 1, Cause: wire.CauseOrigin, Digest: digest},
	})
	if p.cfg.DeliverOwn && p.deps.Deliver != nil {
		p.stats.Accepted++
		p.deps.Accept(id, body, wire.Meta{Cause: wire.CauseOrigin, Digest: digest})
	}
	return id
}

// verify runs Scheme.Verify, reporting the outcome and the wall-clock cost
// to the observer when one is attached (wall-clock, not virtual: under
// simulation the duration still measures real CPU spent verifying).
func (p *Protocol) verify(signer uint32, msg, tag []byte) bool {
	if p.deps.Obs == nil {
		return p.deps.Scheme.Verify(signer, msg, tag)
	}
	start := time.Now() //bbvet:wallclock measures real CPU spent verifying; observability-only, never fed back into protocol decisions
	ok := p.deps.Scheme.Verify(signer, msg, tag)
	//bbvet:wallclock the verify duration is a wall-clock measurement by design (virtual time is zero here)
	p.deps.Obs.OnSigVerify(p.deps.Clock.Now(), p.deps.ID, ok, time.Since(start))
	return ok
}

// send stamps the sender and hands the packet to the host.
func (p *Protocol) send(pkt *wire.Packet) {
	pkt.Sender = p.deps.ID
	p.deps.Send(pkt)
}

// HandlePacket processes one received packet. Hosts call it for every frame
// the radio delivers. Admission control runs first: a sender over its token
// budget is shed before any signature verification or state mutation, so a
// flooding neighbour costs this node a table lookup per packet, not a hash.
func (p *Protocol) HandlePacket(pkt *wire.Packet) {
	if p.stopped || pkt.Sender == p.deps.ID {
		return
	}
	p.deps.ObserveRx(pkt)
	nb := p.touchNeighbor(pkt.Sender)
	if !p.admit(nb) {
		p.stats.RateLimited++
		p.observeAdmission(obsv.AdmitRateLimit)
		return
	}
	if pkt.State != nil {
		p.handleState(pkt.Sender, pkt.State, pkt.StateSig)
	}
	switch pkt.Kind {
	case wire.KindData:
		p.handleData(pkt)
	case wire.KindGossip:
		p.handleGossip(pkt)
	case wire.KindRequest:
		p.handleRequest(pkt)
	case wire.KindFindMissing:
		p.handleFindMissing(pkt)
	case wire.KindSyncReq:
		p.handleSyncReq(pkt)
	case wire.KindSyncResp:
		p.handleSyncResp(pkt)
	case wire.KindOverlayState:
		// State already processed above.
	default:
		// Unknown kind from a valid codec never happens; ignore defensively.
	}
}

// handleData implements §3.2 lines 5–25.
func (p *Protocol) handleData(pkt *wire.Packet) {
	id := pkt.ID()
	if st, ok := p.store[id]; ok && !st.purged {
		p.stats.Duplicates++
		p.deps.ObserveSuppressed(id, pkt.Meta)
		// A duplicate still proves the sender transmitted the expected
		// header: without this, expectations armed after the first copy
		// arrived could never be fulfilled and correct overlay neighbours
		// would accumulate false suspicions. A byte-identical copy of the
		// stored payload and signature is as convincing as re-verifying —
		// those exact bytes verified when first accepted — so replayed
		// duplicates cost a comparison, not a signature check.
		if p.cfg.EnableFDs {
			if bytes.Equal(pkt.Sig, st.dataSig) && bytes.Equal(pkt.Payload, st.payload) {
				p.stats.DedupSkips++
				p.observeAdmission(obsv.AdmitDedup)
				p.mute.Fulfill(fd.ExpectKey{Kind: wire.KindData, ID: id}, pkt.Sender)
			} else if p.verify(uint32(id.Origin), wire.DataSigBytes(id, pkt.Payload), pkt.Sig) {
				p.mute.Fulfill(fd.ExpectKey{Kind: wire.KindData, ID: id}, pkt.Sender)
			}
		}
		return
	}
	if !p.verify(uint32(id.Origin), wire.DataSigBytes(id, pkt.Payload), pkt.Sig) {
		p.stats.BadSignatures++
		p.suspect(pkt.Sender, fd.ReasonBadSignature)
		return
	}
	if st, ok := p.store[id]; ok && st.purged {
		// Already accepted once (tombstone); refresh payload for recovery
		// but do not deliver again.
		st.payload = pkt.Payload
		st.dataSig = pkt.Sig
		st.purged = false
		st.receivedAt = p.deps.Clock.Now()
		st.viaFrame = pkt.Meta.Frame
		st.viaHops = pkt.Meta.Hops
		st.viaRecovered = pkt.Meta.Recovered
		st.digest = dataDigest(pkt)
		p.stats.Duplicates++
		p.deps.ObserveSuppressed(id, pkt.Meta)
		if p.cfg.EnableFDs {
			p.mute.Fulfill(fd.ExpectKey{Kind: wire.KindData, ID: id}, pkt.Sender)
		}
		return
	}

	heardGossipBefore := false
	miss := p.missing[id]
	if miss != nil {
		heardGossipBefore = true
		for _, cancel := range miss.cancels {
			cancel()
		}
		delete(p.missing, id)
	}

	st := &msgState{
		payload:      pkt.Payload,
		dataSig:      pkt.Sig,
		receivedAt:   p.deps.Clock.Now(),
		viaFrame:     pkt.Meta.Frame,
		viaHops:      pkt.Meta.Hops,
		viaRecovered: pkt.Meta.Recovered,
		digest:       dataDigest(pkt),
	}
	p.enforceStoreCap()
	p.store[id] = st
	// A fresh acceptance closes any request cycle for the id: the record is
	// satisfied, so its per-requester counts need not be retained.
	delete(p.reqSeen, id)
	p.stats.Accepted++
	acceptMeta := pkt.Meta
	acceptMeta.Digest = st.digest
	p.deps.Accept(id, pkt.Payload, acceptMeta)

	if p.cfg.EnableFDs {
		// Any pending expectation for this data is satisfied by this sender.
		p.mute.Fulfill(fd.ExpectKey{Kind: wire.KindData, ID: id}, pkt.Sender)
		// §3.2 lines 8–11: received from a non-overlay node that is not the
		// originator — the overlay neighbours should (also) forward it.
		if pkt.Sender != id.Origin && !p.isOverlayNeighbor(pkt.Sender) {
			if ol := p.overlayNeighbors(); len(ol) > 0 {
				p.mute.Expect(fd.ExpectKey{Kind: wire.KindData, ID: id}, ol, fd.ExpectAny)
			}
		}
	}

	switch {
	case p.InOverlay():
		// §3.2 lines 12–13: overlay nodes forward (after a random
		// assessment delay so co-located relays do not collide).
		p.stats.Forwarded++
		p.forwardDataJittered(id, 1, wire.NoNode, wire.CauseOriginRelay)
	case pkt.TTL >= 2:
		// §3.2 lines 15–17: recovery floods travel two hops.
		p.stats.Forwarded++
		p.forwardDataJittered(id, pkt.TTL-1, pkt.Target, wire.CauseGossipRecovery)
	}

	// §3.2 lines 19–21: if we had heard a gossip for it while missing,
	// (re)register it with the lazycast so the next periodic gossip
	// advertises it — others that heard the same gossip may still be
	// missing the data.
	if heardGossipBefore && miss != nil {
		p.registerGossip(id, st, miss.headerSig)
	}
}

// forwardDataJittered re-broadcasts after a random assessment delay; the
// message is re-read from the store at fire time (it may have been purged).
func (p *Protocol) forwardDataJittered(id wire.MsgID, ttl uint8, target wire.NodeID, cause wire.Cause) {
	send := func() {
		st, ok := p.store[id]
		if !ok || st.purged || p.stopped {
			return
		}
		p.forwardData(id, st, ttl, target, cause)
	}
	if p.cfg.ForwardJitter <= 0 {
		send()
		return
	}
	p.deps.Clock.After(time.Duration(p.deps.Rand.Int63n(int64(p.cfg.ForwardJitter))), send)
}

func (p *Protocol) forwardData(id wire.MsgID, st *msgState, ttl uint8, target wire.NodeID, cause wire.Cause) {
	p.send(&wire.Packet{
		Kind:    wire.KindData,
		TTL:     ttl,
		Target:  target,
		Origin:  id.Origin,
		Seq:     id.Seq,
		Payload: st.payload,
		Sig:     st.dataSig,
		Meta: wire.Meta{
			Parent: st.viaFrame,
			Hops:   st.viaHops + 1,
			Cause:  cause,
			Digest: st.digest,
			// A recovery transmission marks the chain: every delivery
			// downstream of one repair is attributed to recovery.
			Recovered: st.viaRecovered || cause == wire.CauseGossipRecovery,
		},
	})
}

// dataDigest returns the payload digest of a data frame, trusting the
// sender's precomputed Meta.Digest when present (simulation) and hashing
// locally otherwise (live transport, where Meta does not cross the wire).
func dataDigest(pkt *wire.Packet) uint64 {
	if pkt.Meta.Digest != 0 {
		return pkt.Meta.Digest
	}
	return wire.Digest(pkt.Payload)
}

// handleGossip implements §3.2 lines 26–41, batched. Two admission guards
// bound the work one datagram can buy: the entry count is capped, and an
// advertisement whose signature byte-matches one we already verified (held
// message or pending recovery) skips re-verification entirely.
func (p *Protocol) handleGossip(pkt *wire.Packet) {
	p.noteGossipArrival(pkt.Sender)
	entries := pkt.Gossip
	if max := p.cfg.GossipMaxEntriesRx; max > 0 && len(entries) > max {
		entries = entries[:max]
		p.observeAdmission(obsv.AdmitGossipTrim)
	}
	for i := range entries {
		entry := entries[i]
		st, held := p.store[entry.ID]
		verified := false
		if held && st.headerSig != nil && bytes.Equal(entry.Sig, st.headerSig) {
			verified = true
		} else if miss := p.missing[entry.ID]; !held && miss != nil && bytes.Equal(entry.Sig, miss.headerSig) {
			verified = true
		}
		if verified {
			p.stats.DedupSkips++
			p.observeAdmission(obsv.AdmitDedup)
		} else if !p.verify(uint32(entry.ID.Origin), wire.HeaderSigBytes(entry.ID), entry.Sig) {
			p.stats.BadSignatures++
			p.suspect(pkt.Sender, fd.ReasonBadSignature)
			continue
		}
		if held {
			// Lines 35–37: register it with the lazycast (if not already
			// advertised) so the periodic gossip passes it onward. The
			// gossiper is also a confirmed holder (stability detection).
			if !st.purged {
				p.registerGossip(entry.ID, st, entry.Sig)
				st.noteHolder(pkt.Sender)
			}
			continue
		}
		p.noteMissing(entry.ID, entry.Sig, pkt.Sender, pkt.Meta.Frame)
	}
}

// noteMissing registers a gossip-advertised message we do not hold and
// schedules its recovery (§3.2 lines 27–33). Every distinct gossiper is
// armed in MUTE (it has the message and must supply it when asked) and asked
// once; later gossip rounds repeat the process until the message arrives.
func (p *Protocol) noteMissing(id wire.MsgID, headerSig []byte, gossiper wire.NodeID, srcFrame uint64) {
	if !p.cfg.EnableRecovery {
		return
	}
	miss := p.missing[id]
	if miss == nil {
		if max := p.cfg.MaxMissing; max > 0 && len(p.missing) >= max {
			// Table full: refuse to track yet another advertised id. Later
			// gossip rounds retry naturally once entries expire or resolve.
			p.stats.Evictions++
			p.observeAdmission(obsv.AdmitMissingReject)
			return
		}
		miss = &pendingMiss{
			headerSig:  headerSig,
			gossipers:  make(map[wire.NodeID]int, 4),
			firstHeard: p.deps.Clock.Now(),
			srcFrame:   srcFrame,
		}
		p.missing[id] = miss
	}
	if _, tracked := miss.gossipers[gossiper]; tracked {
		return // already being recovered via this gossiper
	}
	if len(miss.gossipers) >= maxMissGossipers {
		// Enough recovery avenues tracked; later gossip rounds retry anyway.
		return
	}
	miss.gossipers[gossiper] = 0
	if p.cfg.EnableFDs {
		// Line 28: the gossiper must be able to supply the message.
		p.mute.Expect(fd.ExpectKey{Kind: wire.KindData, ID: id}, []wire.NodeID{gossiper}, fd.ExpectAny)
	}
	delay := p.cfg.RequestDelay
	if gossiper == id.Origin {
		// §3.2 line 29 skips requests to the originator entirely, but that
		// loses one-shot messages whose initial broadcast was wiped out at
		// every neighbour (only the originator ever gossips them, so no
		// other recovery avenue exists). We deviate minimally: the
		// originator is asked too, after a doubled delay, so it remains the
		// avenue of last resort. See DESIGN.md ("deviations").
		delay *= 2
	}
	p.scheduleRequest(id, miss, gossiper, delay)
}

func (p *Protocol) scheduleRequest(id wire.MsgID, miss *pendingMiss, gossiper wire.NodeID, delay time.Duration) {
	cancel := p.deps.Clock.After(delay, func() {
		if p.stopped {
			return
		}
		if cur, ok := p.missing[id]; !ok || cur != miss {
			return
		}
		if st, held := p.store[id]; held && !st.purged {
			delete(p.missing, id)
			return
		}
		p.stats.RequestsSent++
		miss.gossipers[gossiper]++
		// Line 32: one-hop request addressed to the gossiper; overlay
		// neighbours answer too.
		p.send(&wire.Packet{
			Kind:   wire.KindRequest,
			TTL:    1,
			Target: gossiper,
			Origin: id.Origin,
			Seq:    id.Seq,
			Sig:    miss.headerSig,
			Meta:   wire.Meta{Parent: miss.srcFrame, Cause: wire.CauseRequest},
		})
		// The data did not arrive by itself: beyond the per-gossiper first
		// requests, start the bounded retransmission chain (once per entry).
		p.armRetries(id, miss)
	})
	miss.cancels = append(miss.cancels, cancel)
}

// handleRequest implements Figure 4 lines 42–61.
func (p *Protocol) handleRequest(pkt *wire.Packet) {
	id := pkt.ID()
	if !p.verify(uint32(id.Origin), wire.HeaderSigBytes(id), pkt.Sig) {
		p.stats.BadSignatures++
		p.suspect(pkt.Sender, fd.ReasonBadSignature)
		return
	}
	requester := pkt.Sender
	gossiper := pkt.Target
	if !p.InOverlay() && p.deps.ID != gossiper {
		return // line 43: only overlay nodes and the addressed gossiper react
	}
	if p.cfg.EnableFDs && p.verbose.Suspected(requester) {
		// §3.1: detecting verbose nodes lets us "stop reacting to messages
		// from these nodes" — the reaction-amplification cap. Only VERBOSE
		// verdicts gate here: a false MUTE suspicion must not cut a correct
		// node off from recovery.
		return
	}

	st, have := p.store[id]
	if have && !st.purged {
		if p.InOverlay() && p.cfg.EnableFDs {
			// Line 46: an overlay node already broadcast this message;
			// tolerate a few re-requests (collisions), then indict.
			if p.bumpRequestCount(id, requester) > p.cfg.RequestTolerance {
				p.verbose.Indict(requester)
			}
		}
		p.stats.RecoveredByData++
		p.forwardData(id, st, 1, requester, wire.CauseGossipRecovery) // line 48
		return
	}

	// We do not hold the message (lines 49–57).
	if requester == id.Origin {
		// Line 55: the originator "requesting" its own message is absurd.
		if p.cfg.EnableFDs {
			p.verbose.Indict(requester)
		}
		return
	}
	if p.InOverlay() && p.cfg.EnableFindMissing {
		// Line 52: search two overlay hops out, bypassing one Byzantine hop.
		p.stats.FindsSent++
		p.send(&wire.Packet{
			Kind:   wire.KindFindMissing,
			TTL:    2,
			Target: gossiper,
			Origin: id.Origin,
			Seq:    id.Seq,
			Sig:    pkt.Sig,
			Meta:   wire.Meta{Parent: pkt.Meta.Frame, Cause: wire.CauseFind},
		})
	}
}

// handleFindMissing implements Figure 4 lines 62–81.
func (p *Protocol) handleFindMissing(pkt *wire.Packet) {
	id := pkt.ID()
	if !p.verify(uint32(id.Origin), wire.HeaderSigBytes(id), pkt.Sig) {
		p.stats.BadSignatures++
		p.suspect(pkt.Sender, fd.ReasonBadSignature)
		return
	}
	if p.cfg.EnableFDs && p.verbose.Suspected(pkt.Sender) {
		return // do not relay or serve searches from verbose spammers (§3.1)
	}
	st, have := p.store[id]
	if !have || st.purged {
		// Lines 63–66: relay the search one more hop.
		if pkt.TTL >= 2 {
			fwd := pkt.Clone()
			fwd.TTL = pkt.TTL - 1
			fwd.Meta = wire.Meta{Parent: pkt.Meta.Frame, Cause: wire.CauseFind}
			p.send(fwd)
		}
		return
	}
	// Lines 67–78: we hold the message.
	if !p.InOverlay() && p.deps.ID != pkt.Target {
		return
	}
	if nb := p.neighbors[pkt.Sender]; nb != nil && nb.admitted() {
		if p.InOverlay() && p.cfg.EnableFDs {
			// Line 71: a direct neighbour should have had it already.
			if p.bumpRequestCount(id, pkt.Sender) > p.cfg.RequestTolerance {
				p.verbose.Indict(pkt.Sender)
			}
		}
		p.forwardData(id, st, 1, pkt.Sender, wire.CauseGossipRecovery) // line 73
	} else {
		p.forwardData(id, st, 2, pkt.Sender, wire.CauseGossipRecovery) // line 75
	}
}

func (p *Protocol) suspect(id wire.NodeID, reason fd.Reason) {
	if p.cfg.EnableFDs {
		p.trust.Suspect(id, reason)
	}
}

// MissingCount reports how many gossip-advertised messages are still being
// recovered.
func (p *Protocol) MissingCount() int { return len(p.missing) }
