// Package core implements the paper's Byzantine-tolerant broadcast protocol
// (§3): overlay dissemination of signed data messages, unstructured gossiping
// of message signatures, and gossip-driven recovery of missing messages via
// REQUEST_MSG / FIND_MISSING_MSG, guarded by the MUTE, VERBOSE and TRUST
// failure detectors.
//
// The protocol is transport-agnostic: it consumes a Clock, a one-hop
// broadcast function and a deterministic random stream, so the same code runs
// in the discrete-event simulator and over a real datagram transport.
// A Protocol instance is not safe for concurrent use; hosts must serialize
// calls (the simulator is single-threaded, the UDP transport uses a mutex).
package core

import (
	"time"

	"bbcast/internal/fd"
	"bbcast/internal/overlay"
)

// Config holds every protocol parameter. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// GossipInterval is the lazycast period (the paper's gossip_timeout):
	// how often a node re-advertises the signatures of messages it holds.
	GossipInterval time.Duration
	// GossipJitter randomizes each gossip period by ±GossipJitter to
	// desynchronize gossipers.
	GossipJitter time.Duration
	// GossipRetention is how long a message keeps being advertised.
	GossipRetention time.Duration
	// GossipMaxEntries caps advertisements per gossip packet; additional
	// entries wait for the next period (aggregation bound).
	GossipMaxEntries int
	// GossipAggregation, when false, sends one gossip packet per
	// advertisement instead of batching (ablation of the §1 optimization).
	GossipAggregation bool

	// RequestDelay is the paper's request_timeout: how long after hearing a
	// gossip for a missing message the node waits (for the data to arrive
	// by itself) before issuing a REQUEST_MSG.
	RequestDelay time.Duration
	// ForwardJitter is the maximum random delay inserted before forwarding
	// a data message (the broadcast-storm "random assessment delay": it
	// desynchronizes the relays of a flooded frame so they do not collide).
	ForwardJitter time.Duration
	// RequestTolerance is how many identical requests from one node an
	// overlay node serves before indicting it to VERBOSE.
	RequestTolerance int
	// EnableRecovery gates the whole gossip-request-find recovery path
	// (ablation; the paper's protocol has it on).
	EnableRecovery bool
	// EnableFindMissing gates the TTL-2 FIND_MISSING_MSG escalation that
	// bypasses a Byzantine overlay hop (ablation).
	EnableFindMissing bool

	// PurgeTimeout is how long message payloads are retained for recovery.
	PurgeTimeout time.Duration
	// PurgeInterval is how often the purge task runs.
	PurgeInterval time.Duration
	// StabilityPurge enables the paper's alternative purging mechanism
	// (§3.2.2): a payload may be dropped before PurgeTimeout once enough
	// distinct neighbours have advertised the message in their gossip —
	// they all hold it, so this node no longer needs to serve it.
	StabilityPurge bool
	// StabilityThreshold is how many distinct confirming gossipers make a
	// message stable (0 picks half the current neighbour count, min 3).
	StabilityThreshold int
	// StabilityMinAge keeps even stable messages for at least this long
	// (two gossip rounds by default when zero).
	StabilityMinAge time.Duration

	// MaintenanceInterval is the overlay computation-step period.
	MaintenanceInterval time.Duration
	// MaintenanceJitter randomizes the maintenance period.
	MaintenanceJitter time.Duration
	// NeighborTTL expires neighbours not heard from.
	NeighborTTL time.Duration
	// JoinDamping is how many consecutive maintenance steps must agree
	// before a node PROMOTES itself (passive→bridge→dominator). Demotions
	// apply immediately. Damping prevents role oscillation caused by the
	// one-beacon delay in neighbour-state propagation.
	JoinDamping int
	// PiggybackState attaches the overlay-state record to gossip packets
	// instead of sending dedicated maintenance packets (§3: "most overlay
	// maintenance messages can be piggybacked on gossip messages").
	PiggybackState bool
	// Overlay selects the maintenance protocol (CDS or MIS+B).
	Overlay overlay.Kind

	// AdmitRate is the per-sender token-bucket refill rate in packets/second
	// applied before any packet processing (and in particular before any
	// signature verification). Zero or negative disables rate limiting. The
	// default is far above what a correct node ever sends, so only floods
	// are shed.
	AdmitRate float64
	// AdmitBurst is the token-bucket capacity: how many back-to-back packets
	// one sender may land before the rate applies (defaults to 2×AdmitRate
	// when zero).
	AdmitBurst float64
	// MaxNeighbors caps the neighbour table; when full, the least recently
	// heard entry is evicted to admit a new sender (LRU). Zero or negative
	// means unbounded.
	MaxNeighbors int
	// MaxStore caps the message store, tombstones included. At the cap,
	// tombstones are evicted oldest-first, then held payloads. Zero or
	// negative means unbounded.
	MaxStore int
	// StoreQuiescence is how long a purged entry's tombstone is retained as a
	// duplicate filter before being deleted outright. Zero or negative keeps
	// tombstones forever (the pre-hardening behaviour).
	StoreQuiescence time.Duration
	// MaxMissing caps the recovery table; new gossip-advertised messages are
	// not tracked while it is full (later gossip rounds retry naturally).
	// Zero or negative means unbounded.
	MaxMissing int
	// MaxReqSeen caps the per-message request-count table; at the cap the
	// least recently touched record is evicted. Zero or negative means
	// unbounded.
	MaxReqSeen int
	// ReqSeenTTL expires request-count records not touched for this long
	// (defaults to PurgeTimeout when zero).
	ReqSeenTTL time.Duration
	// GossipMaxEntriesRx caps how many advertisements of one received gossip
	// packet are processed; the rest are ignored (a spammer cannot buy
	// unbounded verification work with one datagram). Zero or negative means
	// unbounded.
	GossipMaxEntriesRx int

	// AdaptiveTiming gates the link-quality estimator and the AIMD timer
	// control it drives: with it on, each node scores its neighbours by
	// observed-vs-expected gossip arrivals and moves the gossip period and
	// the MUTE expectation timeout between their configured bounds (faster
	// gossip and a more patient detector under loss, nominal values when the
	// channel recovers). With it off the timers are static (the E15 baseline
	// arm).
	AdaptiveTiming bool
	// GossipIntervalMin and GossipIntervalMax are the hard bounds of the
	// adaptive gossip period (defaults: GossipInterval/4 and 2×GossipInterval
	// when zero). The adaptation never leaves [Min, Max]; the invariant
	// checker's timer-bounds probe enforces this.
	GossipIntervalMin time.Duration
	GossipIntervalMax time.Duration
	// MuteTimeoutMin and MuteTimeoutMax are the hard bounds of the adaptive
	// MUTE expectation timeout (defaults: Mute.Timeout and 4×Mute.Timeout
	// when zero).
	MuteTimeoutMin time.Duration
	MuteTimeoutMax time.Duration

	// RetryMaxAttempts caps the explicit retransmission chain per missing
	// message: after the first request fires without the data arriving, up to
	// this many further requests are sent with exponential backoff before the
	// node gives up and leaves recovery to later gossip rounds. Zero or
	// negative disables the chain (the pre-ISSUE-6 behaviour).
	RetryMaxAttempts int
	// RetryBackoffBase is the delay before the first retransmission; each
	// further attempt doubles it (defaults to RequestDelay when zero).
	RetryBackoffBase time.Duration
	// RetryBackoffMax caps the exponential backoff (defaults to
	// 8×RetryBackoffBase when zero).
	RetryBackoffMax time.Duration

	// EnableFDs gates the failure detectors; with them off the protocol
	// still recovers via gossip but never evicts Byzantine overlay nodes
	// (ablation arm of experiment E4).
	EnableFDs bool
	// Mute, Verbose and Trust parameterize the detectors.
	Mute    fd.MuteConfig
	Verbose fd.VerboseConfig
	Trust   fd.TrustConfig

	// DeliverOwn, when set, delivers the node's own broadcasts locally.
	DeliverOwn bool

	// Persist enables the durable-state layer: the host attaches a
	// persist.Store (Deps.Store) and the protocol records its broadcast
	// sequence number, delivered-message digests and direct suspicions to it,
	// restoring them after an amnesiac crash so the node does not reuse
	// sequence numbers or re-deliver pre-crash traffic.
	Persist bool
	// PersistSnapshotEvery is the periodic snapshot-compaction interval for
	// the durable store (defaults to 10s when zero and Persist is on). The
	// snapshot task draws no randomness, so enabling it does not perturb the
	// RNG schedule of other tasks.
	PersistSnapshotEvery time.Duration
	// CatchUpSync enables the rejoin catch-up protocol: after a wipe the node
	// asks one admitted neighbour for messages it missed while down
	// (SYNC-REQ / SYNC-RESP), instead of waiting for gossip advertisements of
	// messages that may already have aged out of the advertisement window.
	CatchUpSync bool
	// SyncMaxEntries caps the entries in one SYNC-RESP (defaults to 64 when
	// zero). A full batch signals the requester that more may remain, so it
	// issues another round.
	SyncMaxEntries int
	// SyncRetryDelay paces catch-up rounds: the delay before the first
	// SYNC-REQ after rejoin and between successive rounds (defaults to 1s
	// when zero).
	SyncRetryDelay time.Duration
	// SyncMaxAttempts caps fruitless catch-up rounds (no response applied)
	// before the node abandons sync and falls back to plain gossip recovery
	// (defaults to 5 when zero).
	SyncMaxAttempts int
}

// DefaultConfig returns the parameters used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		GossipInterval:    1 * time.Second,
		GossipJitter:      200 * time.Millisecond,
		GossipRetention:   10 * time.Second,
		GossipMaxEntries:  32,
		GossipAggregation: true,

		RequestDelay:      400 * time.Millisecond,
		RequestTolerance:  3,
		EnableRecovery:    true,
		EnableFindMissing: true,

		PurgeTimeout:  30 * time.Second,
		PurgeInterval: 5 * time.Second,

		// Resource bounds: generous enough that correct traffic never hits
		// them at any experiment scale, tight enough that a flooding or
		// replaying neighbour cannot exhaust memory or verification CPU.
		AdmitRate:          60,
		AdmitBurst:         120,
		MaxNeighbors:       128,
		MaxStore:           4096,
		StoreQuiescence:    60 * time.Second,
		MaxMissing:         1024,
		MaxReqSeen:         1024,
		GossipMaxEntriesRx: 64,

		MaintenanceInterval: 1 * time.Second,
		MaintenanceJitter:   200 * time.Millisecond,
		NeighborTTL:         5 * time.Second,
		JoinDamping:         2,
		PiggybackState:      true,
		Overlay:             overlay.MISB,

		// Adaptive timing on by default: under clean channels the estimator
		// stays above its degradation threshold and the timers never move, so
		// the behaviour (and the RNG draw schedule) matches the static
		// configuration exactly.
		AdaptiveTiming:   true,
		RetryMaxAttempts: 3,
		RetryBackoffBase: 800 * time.Millisecond,
		RetryBackoffMax:  6400 * time.Millisecond,

		EnableFDs: true,
		Mute: fd.MuteConfig{
			Timeout:      1500 * time.Millisecond,
			Threshold:    4,
			SuspicionTTL: 30 * time.Second,
			AgeInterval:  5 * time.Second,
		},
		Verbose: fd.VerboseConfig{
			Threshold:    8,
			SuspicionTTL: 30 * time.Second,
			AgeInterval:  10 * time.Second,
		},
		Trust: fd.TrustConfig{
			DirectTTL: 60 * time.Second,
			ReportTTL: 20 * time.Second,
		},

		DeliverOwn: true,
	}
}

// GossipBounds returns the effective adaptive gossip-period bounds, filling
// the documented defaults for zero fields. Both the protocol's AIMD step and
// the invariant checker's timer-bounds probe use this, so they can never
// disagree about what "in bounds" means.
func (c *Config) GossipBounds() (min, max time.Duration) {
	min, max = c.GossipIntervalMin, c.GossipIntervalMax
	if min <= 0 {
		min = c.GossipInterval / 4
	}
	if max <= 0 {
		max = 2 * c.GossipInterval
	}
	if max < min {
		max = min
	}
	return min, max
}

// snapshotEvery returns the effective durable-store snapshot interval.
func (c *Config) snapshotEvery() time.Duration {
	if c.PersistSnapshotEvery > 0 {
		return c.PersistSnapshotEvery
	}
	return 10 * time.Second
}

// syncMaxEntries returns the effective SYNC-RESP batch cap.
func (c *Config) syncMaxEntries() int {
	if c.SyncMaxEntries > 0 {
		return c.SyncMaxEntries
	}
	return 64
}

// syncRetryDelay returns the effective catch-up round pacing.
func (c *Config) syncRetryDelay() time.Duration {
	if c.SyncRetryDelay > 0 {
		return c.SyncRetryDelay
	}
	return 1 * time.Second
}

// syncMaxAttempts returns the effective cap on fruitless catch-up rounds.
func (c *Config) syncMaxAttempts() int {
	if c.SyncMaxAttempts > 0 {
		return c.SyncMaxAttempts
	}
	return 5
}

// MuteTimeoutBounds returns the effective adaptive MUTE-timeout bounds,
// filling the documented defaults for zero fields.
func (c *Config) MuteTimeoutBounds() (min, max time.Duration) {
	min, max = c.MuteTimeoutMin, c.MuteTimeoutMax
	if min <= 0 {
		min = c.Mute.Timeout
	}
	if max <= 0 {
		max = 4 * c.Mute.Timeout
	}
	if max < min {
		max = min
	}
	return min, max
}
