package core

import (
	"bbcast/internal/fd"
	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/persist"
	"bbcast/internal/wire"
)

// reasonRestored tags TRUST suspicions re-raised from the durable store on
// rejoin, distinguishing them from verdicts reached live.
const reasonRestored fd.Reason = "restored"

// maxSyncHave caps the store summary a SYNC-REQ carries. It matches the
// default MaxStore, so in practice the summary is complete; a node configured
// far larger may be re-served entries it already holds, which the apply path
// skips as duplicates.
const maxSyncHave = 4096

// syncEntriesPerToken converts served sync entries into admission-bucket
// tokens: serving a bulk batch charges the requester's bucket one token per
// this many entries, so rejoin catch-up rides the same per-sender budget as
// every other packet and a wipe-pretending spammer cannot buy unbounded
// service.
const syncEntriesPerToken = 8

// Rejoin re-initializes the node after an amnesiac crash: every volatile
// table (store, recovery state, neighbours, link estimators, detectors,
// request counters, overlay role, adapted timers, sequence counter) is reset
// as if the process had restarted, then whatever the durable store remembers
// is restored — the sequence high-water mark, delivered-message tombstones
// (so pre-crash traffic is not re-delivered) and direct TRUST verdicts. With
// CatchUpSync enabled it then starts asking a neighbour for the messages it
// missed while down. Periodic tasks keep their schedules (the "reboot" is
// instantaneous in virtual time). Without a durable store the node really is
// amnesiac: it may re-deliver old messages and will reuse sequence numbers.
func (p *Protocol) Rejoin() {
	if p.stopped {
		return
	}
	// Cancel outstanding recovery timers (sorted walk: cancellation order
	// must not depend on map iteration, for replayable runs).
	for _, id := range sortedMsgIDs(p.missing) {
		for _, cancel := range p.missing[id].cancels {
			cancel()
		}
	}
	p.seq = 0
	p.store = make(map[wire.MsgID]*msgState)
	p.missing = make(map[wire.MsgID]*pendingMiss)
	p.neighbors = make(map[wire.NodeID]*neighborState)
	p.linkQual = make(map[wire.NodeID]*linkEstimate)
	p.reqSeen = make(map[wire.MsgID]*reqRecord)
	p.gossipPeriod = p.cfg.GossipInterval
	p.roleCand = overlay.Passive
	p.roleRun = 0
	if p.role != overlay.Passive {
		p.applyRole(overlay.Passive)
	}
	p.initDetectors()
	p.syncArmed = false
	p.syncAttempts = 0

	restored := p.restoreDurable()
	p.stats.Rejoins++
	if p.deps.Obs != nil {
		p.deps.Obs.OnRejoin(p.deps.Clock.Now(), p.deps.ID, restored)
	}
	if p.cfg.CatchUpSync {
		p.armCatchUp()
	}
}

// SetStore swaps the durable-state layer, as a restarting process reopening
// its device would. Call before Rejoin so the restored state and the
// re-wired detector hooks use the new store; nil makes the node truly
// amnesiac from here on.
func (p *Protocol) SetStore(s *persist.Store) {
	p.deps.Store = s
}

// restoreDurable loads the durable store into the freshly initialized
// volatile state and returns how many delivered-message tombstones were
// restored. Tombstones (not payloads) are what survives: the duplicate filter
// is re-established, while payloads are recovered by catch-up sync or gossip.
// Only TRUST verdicts are re-raised among suspicions — MUTE and VERBOSE
// suspicions are time-bound observations whose clocks died with the process.
func (p *Protocol) restoreDurable() int {
	store := p.deps.Store
	if store == nil {
		return 0
	}
	if s := wire.Seq(store.Seq()); s > p.seq {
		p.seq = s
	}
	now := p.deps.Clock.Now()
	restored := 0
	for _, id := range store.DeliveredSorted() {
		if _, ok := p.store[id]; ok {
			continue
		}
		if max := p.cfg.MaxStore; max > 0 && len(p.store) >= max {
			break
		}
		rec, _ := store.Delivered(id)
		p.store[id] = &msgState{
			purged:     true,
			purgedAt:   now,
			receivedAt: now,
			digest:     rec.Digest,
		}
		restored++
	}
	for _, s := range store.SuspicionsSorted() {
		if s.Detector == persist.DetectorTrust {
			p.trust.Suspect(s.Subject, reasonRestored)
		}
	}
	return restored
}

// observeSync reports one catch-up sync action — the designated emission
// source for obsv.Observer.OnSync.
func (p *Protocol) observeSync(event obsv.SyncEvent, peer wire.NodeID, entries, bytes int) {
	if p.deps.Obs != nil {
		p.deps.Obs.OnSync(p.deps.Clock.Now(), p.deps.ID, peer, event, entries, bytes)
	}
}

// armCatchUp starts (or restarts) the catch-up sync loop. The first request
// waits one SyncRetryDelay so the rejoiner hears a beacon round first and has
// admitted neighbours to ask.
func (p *Protocol) armCatchUp() {
	p.syncArmed = true
	p.syncAttempts = 0
	p.scheduleSyncStep()
}

func (p *Protocol) scheduleSyncStep() {
	p.deps.Clock.After(p.cfg.syncRetryDelay(), func() {
		if p.stopped || !p.syncArmed {
			return
		}
		p.syncStep()
	})
}

// syncStep runs one catch-up round: pick a neighbour, send it a SYNC-REQ
// summarizing what we hold, and schedule the next round. Rounds that apply a
// full batch reset the attempt counter (progress); fruitless rounds count
// toward the SyncMaxAttempts cap, after which the node abandons catch-up and
// leaves recovery to plain gossip.
func (p *Protocol) syncStep() {
	if p.syncAttempts >= p.cfg.syncMaxAttempts() {
		p.syncArmed = false
		p.stats.SyncAbandoned++
		p.observeSync(obsv.SyncAbandoned, wire.NoNode, 0, 0)
		return
	}
	p.syncAttempts++
	target := p.syncTarget()
	if target == wire.NoNode {
		// No admitted neighbour yet (the rejoiner is still being debounced);
		// the next round retries.
		p.scheduleSyncStep()
		return
	}
	have := make([]wire.MsgID, 0, len(p.store))
	for _, id := range sortedMsgIDs(p.store) {
		have = append(have, id)
		if len(have) >= maxSyncHave {
			break
		}
	}
	pkt := &wire.Packet{
		Kind:     wire.KindSyncReq,
		TTL:      1,
		Target:   target,
		Origin:   wire.NoNode,
		SyncHave: have,
		Meta:     wire.Meta{Cause: wire.CauseSyncReq},
	}
	p.stats.SyncReqsSent++
	p.observeSync(obsv.SyncReqSent, target, len(have), 8*len(have))
	p.send(pkt)
	p.scheduleSyncStep()
}

// syncTarget picks the lowest-id admitted neighbour that is not directly
// suspected. Lowest-id (not random) keeps the packet schedule independent of
// map iteration order; if that neighbour stonewalls, the attempt cap bounds
// the damage and gossip recovery still proceeds underneath.
func (p *Protocol) syncTarget() wire.NodeID {
	best := wire.NoNode
	//bbvet:unordered min-scan: the selected id is the order-independent minimum
	for id, nb := range p.neighbors {
		if !nb.admitted() || id >= best {
			continue
		}
		if p.cfg.EnableFDs {
			if _, suspected := p.trust.Reason(id); suspected {
				continue
			}
		}
		best = id
	}
	return best
}

// handleSyncReq serves one catch-up request: every held, unpurged message
// absent from the requester's summary, sorted, capped at SyncMaxEntries per
// response. Service is metered through the requester's admission bucket; a
// requester without the tokens for the batch is dropped (it retries after its
// bucket refills). An empty response is still sent — it tells the requester
// it is caught up.
func (p *Protocol) handleSyncReq(pkt *wire.Packet) {
	if pkt.Target != p.deps.ID {
		return
	}
	if p.cfg.EnableFDs && p.verbose.Suspected(pkt.Sender) {
		return // §3.1: no reaction amplification for verbose spammers
	}
	have := make(map[wire.MsgID]bool, len(pkt.SyncHave))
	for _, id := range pkt.SyncHave {
		have[id] = true
	}
	limit := p.cfg.syncMaxEntries()
	var entries []wire.SyncEntry
	for _, id := range sortedMsgIDs(p.store) {
		st := p.store[id]
		if st.purged || have[id] || st.dataSig == nil {
			continue
		}
		entries = append(entries, wire.SyncEntry{
			ID:        id,
			Payload:   st.payload,
			Sig:       st.dataSig,
			HeaderSig: st.headerSig,
		})
		if len(entries) >= limit {
			break
		}
	}
	nbytes := 4
	for i := range entries {
		nbytes += 20 + len(entries[i].Payload) + len(entries[i].Sig) + len(entries[i].HeaderSig)
	}
	if nb := p.neighbors[pkt.Sender]; nb != nil && p.cfg.AdmitRate > 0 && len(entries) > 0 {
		cost := float64(len(entries)) / syncEntriesPerToken
		if nb.tokens < cost {
			// Not enough budget for the batch: shed the request whole rather
			// than truncate — a short response means "caught up" to the
			// requester, and a token shortage must not fake that signal.
			p.stats.RateLimited++
			p.observeAdmission(obsv.AdmitRateLimit)
			return
		}
		nb.tokens -= cost
	}
	p.stats.SyncEntriesServed += uint64(len(entries))
	p.observeSync(obsv.SyncServed, pkt.Sender, len(entries), nbytes)
	p.send(&wire.Packet{
		Kind:        wire.KindSyncResp,
		TTL:         1,
		Target:      pkt.Sender,
		Origin:      wire.NoNode,
		SyncEntries: entries,
		Meta:        wire.Meta{Parent: pkt.Meta.Frame, Cause: wire.CauseSyncResp},
	})
}

// handleSyncResp applies one catch-up response: each entry is
// signature-verified against its originator and accepted exactly like a
// recovered data frame, except it is not re-forwarded (the network already
// disseminated it; only this node was behind). A full batch means more may
// remain, so the attempt counter resets and the next round continues; a short
// batch means the serving neighbour had nothing else — caught up.
func (p *Protocol) handleSyncResp(pkt *wire.Packet) {
	if pkt.Target != p.deps.ID || !p.syncArmed {
		return
	}
	now := p.deps.Clock.Now()
	applied := 0
	for i := range pkt.SyncEntries {
		e := pkt.SyncEntries[i]
		if _, ok := p.store[e.ID]; ok {
			continue // held or tombstoned: already delivered
		}
		if !p.verify(uint32(e.ID.Origin), wire.DataSigBytes(e.ID, e.Payload), e.Sig) {
			p.stats.BadSignatures++
			p.suspect(pkt.Sender, fd.ReasonBadSignature)
			break // poisoned batch: discard the rest
		}
		st := &msgState{
			payload:      e.Payload,
			dataSig:      e.Sig,
			receivedAt:   now,
			viaFrame:     pkt.Meta.Frame,
			viaRecovered: true,
			digest:       wire.Digest(e.Payload),
		}
		// The header signature is the gossip proof; keep it only if it
		// verifies, so a corrupt one can never be re-advertised under our
		// name. The payload above already proved itself independently.
		if len(e.HeaderSig) > 0 && p.verify(uint32(e.ID.Origin), wire.HeaderSigBytes(e.ID), e.HeaderSig) {
			st.headerSig = e.HeaderSig
		}
		if miss := p.missing[e.ID]; miss != nil {
			for _, cancel := range miss.cancels {
				cancel()
			}
			delete(p.missing, e.ID)
		}
		p.enforceStoreCap()
		p.store[e.ID] = st
		delete(p.reqSeen, e.ID)
		p.stats.Accepted++
		p.deps.Accept(e.ID, e.Payload, wire.Meta{
			Frame:     pkt.Meta.Frame,
			Cause:     wire.CauseSyncResp,
			Digest:    st.digest,
			Recovered: true,
		})
		applied++
	}
	p.observeSync(obsv.SyncApplied, pkt.Sender, applied, 0)
	p.stats.SyncEntriesApplied += uint64(applied)
	switch {
	case len(pkt.SyncEntries) >= p.cfg.syncMaxEntries() && applied > 0:
		p.syncAttempts = 0 // full batch applied: likely more remains
	case len(pkt.SyncEntries) < p.cfg.syncMaxEntries():
		p.syncArmed = false // short batch: the neighbour had nothing else
	}
}

// Synced reports whether catch-up sync is idle (never armed, completed, or
// abandoned).
func (p *Protocol) Synced() bool { return !p.syncArmed }
