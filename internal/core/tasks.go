package core

import (
	"fmt"
	"sort"
	"time"

	"bbcast/internal/fd"
	"bbcast/internal/obsv"
	"bbcast/internal/overlay"
	"bbcast/internal/wire"
)

// gossipTick is the periodic lazycast (§3.2 line 4, §3.2.2 subtask 1): it
// re-advertises the header signatures of recently received messages,
// aggregated into as few packets as possible, optionally piggybacking the
// overlay-state record.
func (p *Protocol) gossipTick() {
	now := p.deps.Clock.Now()
	entries := make([]wire.GossipEntry, 0, 16)
	ids := make([]wire.MsgID, 0, len(p.store))
	for id := range p.store {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		st := p.store[id]
		if st.purged || now-st.receivedAt > p.cfg.GossipRetention {
			continue
		}
		if st.headerSig == nil {
			// We received the data but never a gossip proof; derive one if
			// we are the originator, otherwise we cannot advertise.
			if id.Origin == p.deps.ID {
				st.headerSig = p.deps.Scheme.Sign(uint32(p.deps.ID), wire.HeaderSigBytes(id))
			} else {
				continue
			}
		}
		entries = append(entries, wire.GossipEntry{ID: id, Sig: st.headerSig})
		st.gossiped = true
		if p.cfg.GossipMaxEntries > 0 && len(entries) >= p.cfg.GossipMaxEntries {
			break
		}
	}
	p.sendGossipWithState(entries)
}

// sendGossipWithState emits the gossip (even when empty, if a state record
// is due to ride on it) and attaches the overlay state when piggybacking.
func (p *Protocol) sendGossipWithState(entries []wire.GossipEntry) {
	var state *wire.OverlayState
	var stateSig []byte
	if p.cfg.PiggybackState {
		state = p.buildState()
		stateSig = p.deps.Scheme.Sign(uint32(p.deps.ID), wire.StateSigBytes(p.deps.ID, state))
	}
	if len(entries) == 0 && state == nil {
		return
	}
	if !p.cfg.GossipAggregation && len(entries) > 1 {
		// Ablation: one advertisement per packet (state on the first).
		for i, e := range entries {
			pkt := &wire.Packet{
				Kind:   wire.KindGossip,
				TTL:    1,
				Target: wire.NoNode,
				Origin: wire.NoNode,
				Gossip: []wire.GossipEntry{e},
				Meta:   wire.Meta{Cause: wire.CauseGossip},
			}
			if i == 0 {
				pkt.State = state
				pkt.StateSig = stateSig
			}
			p.stats.GossipsSent++
			p.send(pkt)
		}
		return
	}
	p.stats.GossipsSent++
	p.send(&wire.Packet{
		Kind:     wire.KindGossip,
		TTL:      1,
		Target:   wire.NoNode,
		Origin:   wire.NoNode,
		Gossip:   entries,
		State:    state,
		StateSig: stateSig,
		Meta:     wire.Meta{Cause: wire.CauseGossip},
	})
}

// sendGossip emits a bare gossip packet (no piggybacked state).
func (p *Protocol) sendGossip(entries []wire.GossipEntry) {
	if len(entries) == 0 {
		return
	}
	p.stats.GossipsSent++
	p.send(&wire.Packet{
		Kind:   wire.KindGossip,
		TTL:    1,
		Target: wire.NoNode,
		Origin: wire.NoNode,
		Gossip: entries,
		Meta:   wire.Meta{Cause: wire.CauseGossip},
	})
}

// registerGossip records the header signature so the periodic lazycast can
// advertise the message (the paper's lazycast "initiates periodic
// broadcasting" — registration, not an immediate transmission; §3.2 lines
// 20 and 36).
func (p *Protocol) registerGossip(id wire.MsgID, st *msgState, headerSig []byte) {
	if st.headerSig == nil {
		st.headerSig = headerSig
	}
}

// maintenanceTick is the overlay computation step (§3.3): refresh the
// neighbour table, recompute the local role, and publish the state record
// (as its own packet unless it piggybacks on gossip).
func (p *Protocol) maintenanceTick() {
	p.expireNeighbors()
	p.adaptTimers()
	view := p.buildView()
	next := p.maint.Decide(view)
	switch {
	case next == p.role:
		p.roleRun = 0
	case p.role == overlay.Dominator && overlay.SuppressedByHigherDominator(view):
		// MIS safety: two adjacent dominators violate independence, and the
		// lower one must yield at once or the conflict propagates.
		p.applyRole(next)
	default:
		// All other changes are damped: neighbour views lag by a beacon
		// period and marginal fringe links flap, so a transient verdict
		// must persist for JoinDamping consecutive steps before the role
		// changes. Without damping, adjacent nodes step up in lockstep and
		// the overlay churns indefinitely.
		if next == p.roleCand {
			p.roleRun++
		} else {
			p.roleCand = next
			p.roleRun = 1
		}
		damping := p.cfg.JoinDamping
		if damping < 1 {
			damping = 1
		}
		if p.roleRun >= damping {
			p.applyRole(next)
		}
	}
	if !p.cfg.PiggybackState {
		state := p.buildState()
		p.send(&wire.Packet{
			Kind:     wire.KindOverlayState,
			TTL:      1,
			Target:   wire.NoNode,
			Origin:   wire.NoNode,
			State:    state,
			StateSig: p.deps.Scheme.Sign(uint32(p.deps.ID), wire.StateSigBytes(p.deps.ID, state)),
			Meta:     wire.Meta{Cause: wire.CauseState},
		})
	}
	p.sampleQueues()
}

// sampleQueues reports the protocol-internal queue depths once per
// maintenance tick (the paper's buffer-bound concern, §3.4.1, made visible).
func (p *Protocol) sampleQueues() {
	obs := p.deps.Obs
	if obs == nil {
		return
	}
	at, id := p.deps.Clock.Now(), p.deps.ID
	obs.OnQueueDepth(at, id, obsv.QueueStore, len(p.store))
	obs.OnQueueDepth(at, id, obsv.QueueMissing, len(p.missing))
	obs.OnQueueDepth(at, id, obsv.QueueNeighbors, len(p.neighbors))
	obs.OnQueueDepth(at, id, obsv.QueueExpectations, p.mute.PendingExpectations())
	obs.OnQueueDepth(at, id, obsv.QueueReqSeen, len(p.reqSeen))
	obs.OnQueueDepth(at, id, obsv.QueueLinkQual, len(p.linkQual))
}

// purgeTick drops payloads past the retention window — or, with stability
// purging on, as soon as enough distinct neighbours have advertised the
// message — leaving tombstones so duplicates are still filtered (§3.2.2).
// Tombstones themselves are deleted once quiescent for StoreQuiescence, and
// request-count records expire after ReqSeenTTL, so every table this task
// feeds shrinks back to zero under silence.
func (p *Protocol) purgeTick() {
	now := p.deps.Clock.Now()
	// Every loop below walks its table in sorted id order: purging cancels
	// timers and emits admission events, and neither may happen in Go's
	// randomized map iteration order or serial and parallel replays of the
	// same seed would diverge.
	//
	// A message advertised but never received is abandoned once its
	// recovery window passes (everyone else will have purged it too).
	for _, id := range sortedMsgIDs(p.missing) {
		miss := p.missing[id]
		if now-miss.firstHeard > p.cfg.PurgeTimeout {
			for _, cancel := range miss.cancels {
				cancel()
			}
			delete(p.missing, id)
		}
	}
	for _, id := range sortedMsgIDs(p.store) {
		st := p.store[id]
		if st.purged {
			// Quiescence GC: a tombstone that has outlived its duplicate-filter
			// window is dropped outright. The price is that a ≥quiescence-old
			// replay is accepted (and re-delivered locally) once more — benign
			// for agreement, and the metrics layer is idempotent per (id, node).
			if q := p.cfg.StoreQuiescence; q > 0 && now-st.purgedAt > q {
				delete(p.store, id)
				p.observeAdmission(obsv.AdmitStoreEvict)
			}
			continue
		}
		age := now - st.receivedAt
		expired := age > p.cfg.PurgeTimeout
		if !expired && p.cfg.StabilityPurge {
			expired = p.stable(st, age)
		}
		if expired {
			st.payload = nil
			st.dataSig = nil
			st.headerSig = nil
			st.holders = nil
			st.purged = true
			st.purgedAt = now
			delete(p.reqSeen, id)
		}
	}
	ttl := p.cfg.ReqSeenTTL
	if ttl <= 0 {
		ttl = p.cfg.PurgeTimeout
	}
	if ttl > 0 {
		for _, id := range sortedMsgIDs(p.reqSeen) {
			if now-p.reqSeen[id].touched > ttl {
				delete(p.reqSeen, id)
				p.observeAdmission(obsv.AdmitReqSeenExpire)
			}
		}
	}
}

// sortedMsgIDs returns m's keys in ascending (origin, seq) order, for table
// walks whose bodies emit events or touch timers.
func sortedMsgIDs[V any](m map[wire.MsgID]V) []wire.MsgID {
	ids := make([]wire.MsgID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	return ids
}

// stable reports whether enough distinct neighbours advertised the message
// for it to be safely dropped early.
func (p *Protocol) stable(st *msgState, age time.Duration) bool {
	minAge := p.cfg.StabilityMinAge
	if minAge <= 0 {
		minAge = 2 * p.cfg.GossipInterval
	}
	if age < minAge {
		return false
	}
	threshold := p.cfg.StabilityThreshold
	if threshold <= 0 {
		threshold = len(p.neighbors) / 2
		if threshold < 3 {
			threshold = 3
		}
	}
	return len(st.holders) >= threshold
}

func (p *Protocol) touchNeighbor(id wire.NodeID) *neighborState {
	now := p.deps.Clock.Now()
	nb := p.neighbors[id]
	if nb == nil {
		p.enforceNeighborCap()
		// A new sender starts with a full token bucket so short bursts from
		// legitimate newcomers are never shed.
		burst := p.cfg.AdmitBurst
		if burst <= 0 {
			burst = 2 * p.cfg.AdmitRate
		}
		nb = &neighborState{tokens: burst, lastRefill: now}
		p.neighbors[id] = nb
	}
	nb.lastHeard = now
	if nb.hits < 1<<30 {
		nb.hits++
	}
	return nb
}

func (p *Protocol) expireNeighbors() {
	if p.cfg.NeighborTTL <= 0 {
		return
	}
	now := p.deps.Clock.Now()
	for id, nb := range p.neighbors {
		if now-nb.lastHeard > p.cfg.NeighborTTL {
			delete(p.neighbors, id)
			delete(p.linkQual, id)
		}
	}
}

// handleState processes a neighbour's (signed) overlay-state record and its
// second-hand suspicion reports.
func (p *Protocol) handleState(from wire.NodeID, state *wire.OverlayState, stateSig []byte) {
	if !p.verify(uint32(from), wire.StateSigBytes(from, state), stateSig) {
		p.stats.BadSignatures++
		p.suspect(from, fd.ReasonBadSignature)
		return
	}
	nb := p.neighbors[from]
	if nb == nil {
		// handleState is only reached through HandlePacket, which already
		// created the entry via touchNeighbor; this branch guards direct
		// callers (tests) only.
		nb = p.touchNeighbor(from)
	}
	nb.lastHeard = p.deps.Clock.Now()
	nb.state = state
	if p.cfg.EnableFDs {
		for _, s := range state.Suspects {
			if s != p.deps.ID {
				p.trust.Report(from, s)
			}
		}
	}
}

// buildView assembles the maintainer's input from the neighbour table and
// the TRUST detector.
func (p *Protocol) buildView() overlay.View {
	v := overlay.View{Self: p.deps.ID, SelfRole: p.role}
	v.Distrusts = func(id wire.NodeID) bool { return p.level(id) == fd.Untrusted }
	ids := make([]wire.NodeID, 0, len(p.neighbors))
	for id := range p.neighbors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nb := p.neighbors[id]
		if !nb.admitted() {
			continue
		}
		info := overlay.NeighborInfo{
			ID:    id,
			Role:  overlay.Passive,
			Level: p.level(id),
		}
		if nb.state != nil {
			switch {
			case nb.state.Dominator:
				info.Role = overlay.Dominator
			case nb.state.Active:
				info.Role = overlay.Bridge
			}
			info.Neighbors = nb.state.Neighbors
			info.ActiveNeighbors = nb.state.ActiveNeighbors
			info.DominatorNeighbors = nb.state.DominatorNeighbors
		}
		v.Neighbors = append(v.Neighbors, info)
	}
	return v
}

// level returns the local trust level for id (Trusted when detectors are
// disabled).
func (p *Protocol) level(id wire.NodeID) fd.Level {
	if !p.cfg.EnableFDs {
		return fd.Trusted
	}
	return p.trust.Level(id)
}

// buildState produces the signed maintenance record the node publishes.
func (p *Protocol) buildState() *wire.OverlayState {
	st := &wire.OverlayState{
		Active:    p.role.Active(),
		Dominator: p.role == overlay.Dominator,
	}
	ids := make([]wire.NodeID, 0, len(p.neighbors))
	for id := range p.neighbors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		nb := p.neighbors[id]
		if !nb.admitted() {
			continue
		}
		st.Neighbors = append(st.Neighbors, id)
		if nb.state != nil && nb.state.Active && p.level(id) != fd.Untrusted {
			st.ActiveNeighbors = append(st.ActiveNeighbors, id)
			if nb.state.Dominator {
				st.DominatorNeighbors = append(st.DominatorNeighbors, id)
			}
		}
	}
	if p.cfg.EnableFDs {
		st.Suspects = p.trust.Suspects()
	}
	return st
}

// isOverlayNeighbor reports whether id is a usable overlay neighbour
// (OL(1,p) membership).
func (p *Protocol) isOverlayNeighbor(id wire.NodeID) bool {
	nb := p.neighbors[id]
	return nb != nil && nb.admitted() && nb.state != nil && nb.state.Active && p.level(id) != fd.Untrusted
}

// overlayNeighbors returns OL(1,p): the usable overlay neighbours, sorted.
func (p *Protocol) overlayNeighbors() []wire.NodeID {
	// Sorted iteration, not sort-after-filter: level() folds expired
	// suspicions lazily and can emit raise/clear transitions, so the filter
	// itself must run in id order.
	ids := make([]wire.NodeID, 0, len(p.neighbors))
	for id := range p.neighbors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]wire.NodeID, 0, 8)
	for _, id := range ids {
		nb := p.neighbors[id]
		if nb.admitted() && nb.state != nil && nb.state.Active && p.level(id) != fd.Untrusted {
			out = append(out, id)
		}
	}
	return out
}

// OverlayNeighbors exposes OL(1,p): the usable overlay neighbours.
func (p *Protocol) OverlayNeighbors() []wire.NodeID { return p.overlayNeighbors() }

// DescribeView renders the current maintainer view, for tools and debugging.
func (p *Protocol) DescribeView() string {
	v := p.buildView()
	s := fmt.Sprintf("self=%d role=%v\n", v.Self, p.role)
	for _, n := range v.Neighbors {
		s += fmt.Sprintf("  nbr %d role=%v level=%v nbrs=%v act=%v\n", n.ID, n.Role, n.Level, n.Neighbors, n.ActiveNeighbors)
	}
	return s
}

// applyRole commits a role change.
func (p *Protocol) applyRole(next overlay.Role) {
	p.role = next
	p.roleRun = 0
	p.roleChanges++
	if p.deps.Obs != nil {
		p.deps.Obs.OnRoleChange(p.deps.Clock.Now(), p.deps.ID, next)
	}
}

// RoleChanges reports how many times the node's role changed (a measure of
// overlay churn).
func (p *Protocol) RoleChanges() uint64 { return p.roleChanges }
