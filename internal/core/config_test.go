package core

// Tests for configuration paths not exercised by the main protocol tests:
// dedicated maintenance packets, delivery options, gossip batching limits,
// retention windows.

import (
	"testing"
	"time"

	"bbcast/internal/wire"
)

func TestDedicatedStatePacketsWhenNotPiggybacking(t *testing.T) {
	cfg := testConfig()
	cfg.PiggybackState = false
	h := newHarness(t, 0, cfg)
	h.run(cfg.MaintenanceInterval + 100*time.Millisecond)
	states := h.sentOfKind(wire.KindOverlayState)
	if len(states) == 0 {
		t.Fatal("no dedicated overlay-state packet sent")
	}
	if states[0].State == nil || len(states[0].StateSig) == 0 {
		t.Fatal("state packet unsigned or empty")
	}
	// Gossip packets must not carry state in this mode.
	h.sent = nil
	h.p.Broadcast([]byte("x"))
	h.run(cfg.GossipInterval + 100*time.Millisecond)
	for _, g := range h.sentOfKind(wire.KindGossip) {
		if g.State != nil {
			t.Fatal("gossip carried state despite PiggybackState=false")
		}
	}
}

func TestDeliverOwnDisabled(t *testing.T) {
	cfg := testConfig()
	cfg.DeliverOwn = false
	h := newHarness(t, 0, cfg)
	h.p.Broadcast([]byte("mine"))
	if len(h.delivered) != 0 {
		t.Fatal("own message delivered despite DeliverOwn=false")
	}
}

func TestGossipMaxEntriesCapsBatch(t *testing.T) {
	cfg := testConfig()
	cfg.GossipMaxEntries = 3
	h := newHarness(t, 0, cfg)
	var ids []wire.MsgID
	for i := 0; i < 10; i++ {
		h.p.HandlePacket(h.dataFrom(1, wire.Seq(i+1), []byte("m")))
		ids = append(ids, wire.MsgID{Origin: 1, Seq: wire.Seq(i + 1)})
	}
	h.p.HandlePacket(h.gossipFrom(2, ids...)) // header signatures arrive
	h.sent = nil
	h.run(cfg.GossipInterval + 100*time.Millisecond)
	gossips := h.sentOfKind(wire.KindGossip)
	if len(gossips) != 1 {
		t.Fatalf("gossip packets = %d", len(gossips))
	}
	if len(gossips[0].Gossip) != 3 {
		t.Fatalf("entries = %d, want capped at 3", len(gossips[0].Gossip))
	}
}

func TestGossipRetentionStopsAdvertising(t *testing.T) {
	cfg := testConfig()
	cfg.GossipRetention = 2 * time.Second
	cfg.PurgeTimeout = time.Hour
	h := newHarness(t, 0, cfg)
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	// The header signature arrives by gossip (receivers cannot forge it);
	// only then can this node re-advertise.
	h.p.HandlePacket(h.gossipFrom(2, wire.MsgID{Origin: 1, Seq: 1}))
	h.run(cfg.GossipInterval + 100*time.Millisecond)
	early := len(h.sentOfKind(wire.KindGossip)[0].Gossip)
	if early != 1 {
		t.Fatalf("fresh message not advertised: %d entries", early)
	}
	h.run(5 * time.Second)
	h.sent = nil
	h.run(cfg.GossipInterval + 100*time.Millisecond)
	for _, g := range h.sentOfKind(wire.KindGossip) {
		if len(g.Gossip) != 0 {
			t.Fatal("message advertised past GossipRetention")
		}
	}
	// Still held and servable though.
	if !h.p.Holds(wire.MsgID{Origin: 1, Seq: 1}) {
		t.Fatal("message purged before PurgeTimeout")
	}
}

func TestZeroForwardJitterForwardsInline(t *testing.T) {
	cfg := testConfig()
	cfg.ForwardJitter = 0
	h := newHarness(t, 5, cfg)
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	if len(h.sentOfKind(wire.KindData)) != 1 {
		t.Fatal("inline forward missing with zero jitter")
	}
}

func TestForwardJitterDelaysForward(t *testing.T) {
	cfg := testConfig()
	cfg.ForwardJitter = 50 * time.Millisecond
	h := newHarness(t, 5, cfg)
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	if len(h.sentOfKind(wire.KindData)) != 0 {
		t.Fatal("forward left before the assessment delay")
	}
	h.run(60 * time.Millisecond)
	if len(h.sentOfKind(wire.KindData)) != 1 {
		t.Fatal("forward never left after the assessment delay")
	}
}

func TestForwardCancelledIfPurgedBeforeJitterFires(t *testing.T) {
	cfg := testConfig()
	cfg.ForwardJitter = 500 * time.Millisecond
	cfg.PurgeTimeout = 100 * time.Millisecond
	cfg.PurgeInterval = 50 * time.Millisecond
	h := newHarness(t, 5, cfg)
	h.makeOverlay()
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("m")))
	h.run(time.Second)
	if len(h.sentOfKind(wire.KindData)) != 0 {
		t.Fatal("forwarded a payload that was purged before the delay elapsed")
	}
}

func TestSecondHandReportAboutSelfIgnored(t *testing.T) {
	// A Byzantine neighbour accusing *us* must not poison our own tables.
	h := newHarness(t, 0, testConfig())
	st := &wire.OverlayState{Active: true, Suspects: []wire.NodeID{0}}
	h.introduceNeighbors(map[wire.NodeID]*wire.OverlayState{2: st})
	// Nothing to assert on Trust().Level(0) (it is never consulted for
	// self); the protocol must simply not crash and keep operating.
	h.p.Broadcast([]byte("still alive"))
	if len(h.delivered) != 1 {
		t.Fatal("node stopped working after being accused")
	}
}

func TestStatsSnapshot(t *testing.T) {
	h := newHarness(t, 0, testConfig())
	h.p.Broadcast([]byte("a"))
	h.p.HandlePacket(h.dataFrom(1, 1, []byte("b")))
	st := h.p.Stats()
	if st.Accepted != 2 {
		t.Fatalf("Accepted = %d", st.Accepted)
	}
	if h.p.ID() != 0 {
		t.Fatalf("ID = %d", h.p.ID())
	}
}

func TestAbandonedMissingEntriesReaped(t *testing.T) {
	cfg := testConfig()
	cfg.PurgeTimeout = 2 * time.Second
	cfg.PurgeInterval = 500 * time.Millisecond
	h := newHarness(t, 0, cfg)
	for i := 0; i < 5; i++ {
		h.p.HandlePacket(h.gossipFrom(2, wire.MsgID{Origin: 1, Seq: wire.Seq(i + 1)}))
	}
	if got := h.p.MissingCount(); got != 5 {
		t.Fatalf("missing = %d, want 5", got)
	}
	h.run(5 * time.Second)
	if got := h.p.MissingCount(); got != 0 {
		t.Fatalf("abandoned missing entries not reaped: %d", got)
	}
}
