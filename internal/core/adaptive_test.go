package core

// Tests for ISSUE 6's adaptive-timing and bounded-retransmission layer: the
// retry chain's backoff, cap, give-up accounting and gossiper rotation, and
// the link-quality-driven AIMD timer control with its hard bounds.

import (
	"testing"
	"time"

	"bbcast/internal/wire"
)

// TestRetransmissionBackoffAndGiveUp: a gossiper that never supplies the
// advertised data is re-asked up to RetryMaxAttempts times with growing
// backoff, then the chain gives up explicitly while the missing entry stays
// for the natural gossip-round retry.
func TestRetransmissionBackoffAndGiveUp(t *testing.T) {
	cfg := testConfig()
	// Raise the server-side tolerance above the retry budget so this test
	// exercises the full backoff chain; the tolerance interaction is pinned
	// by TestRetryRespectsRequestTolerance.
	cfg.RequestTolerance = cfg.RetryMaxAttempts + 1
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.run(2 * time.Minute)

	reqs := h.sentOfKind(wire.KindRequest)
	want := 1 + cfg.RetryMaxAttempts
	if len(reqs) != want {
		t.Fatalf("requests = %d, want %d (first + %d retries)", len(reqs), want, cfg.RetryMaxAttempts)
	}
	st := h.p.Stats()
	if st.RetriesSent != uint64(cfg.RetryMaxAttempts) {
		t.Fatalf("RetriesSent = %d, want %d", st.RetriesSent, cfg.RetryMaxAttempts)
	}
	if st.RetriesAbandoned != 1 {
		t.Fatalf("RetriesAbandoned = %d, want 1", st.RetriesAbandoned)
	}
	// The backoff grows: each retry fires no earlier than its base backoff
	// after the previous request. With the entry's firstHeard at t=0, the
	// first request fires at RequestDelay and the chain spans at least the
	// summed base backoffs.
	if h.p.MissingCount() == 1 {
		t.Log("missing entry retained after give-up (natural gossip retry still applies)")
	} else if h.p.MissingCount() != 0 {
		t.Fatalf("MissingCount = %d", h.p.MissingCount())
	}
}

// TestRetryStopsWhenDataArrives: a chain in flight is cut short the moment
// the data lands; no abandoned transition is recorded.
func TestRetryStopsWhenDataArrives(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	// Let the first request and one retry fire, then supply the data.
	h.run(cfg.RequestDelay + cfg.RetryBackoffBase + cfg.RetryBackoffBase/4 + 50*time.Millisecond)
	sentBefore := len(h.sentOfKind(wire.KindRequest))
	h.p.HandlePacket(h.dataFrom(1, 7, []byte("payload")))
	h.run(2 * time.Minute)

	if got := len(h.sentOfKind(wire.KindRequest)); got != sentBefore {
		t.Fatalf("requests grew from %d to %d after the data arrived", sentBefore, got)
	}
	if st := h.p.Stats(); st.RetriesAbandoned != 0 {
		t.Fatalf("RetriesAbandoned = %d after successful recovery, want 0", st.RetriesAbandoned)
	}
	if h.p.MissingCount() != 0 {
		t.Fatalf("MissingCount = %d after recovery, want 0", h.p.MissingCount())
	}
}

// TestRetryRespectsRequestTolerance: with a single gossiper, the chain stops
// once that target has been asked RequestTolerance times in total — one more
// request would get this node indicted as VERBOSE by a correct server.
func TestRetryRespectsRequestTolerance(t *testing.T) {
	cfg := testConfig()
	if cfg.RetryMaxAttempts < cfg.RequestTolerance {
		t.Skip("default retry budget no longer reaches the tolerance cap")
	}
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.run(2 * time.Minute)

	reqs := h.sentOfKind(wire.KindRequest)
	if len(reqs) != cfg.RequestTolerance {
		t.Fatalf("requests = %d, want exactly RequestTolerance (%d)", len(reqs), cfg.RequestTolerance)
	}
	st := h.p.Stats()
	if st.RetriesSent != uint64(cfg.RequestTolerance-1) {
		t.Fatalf("RetriesSent = %d, want %d", st.RetriesSent, cfg.RequestTolerance-1)
	}
	if st.RetriesAbandoned != 1 {
		t.Fatalf("RetriesAbandoned = %d, want 1", st.RetriesAbandoned)
	}
}

// TestRetryRotatesGossipers: with several known gossipers, the retransmission
// chain spreads its attempts over them instead of hammering the first.
func TestRetryRotatesGossipers(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 7}
	h.p.HandlePacket(h.gossipFrom(2, id))
	h.p.HandlePacket(h.gossipFrom(3, id))
	h.run(2 * time.Minute)

	reqs := h.sentOfKind(wire.KindRequest)
	// Two first requests (one per gossiper) + RetryMaxAttempts retries.
	if want := 2 + cfg.RetryMaxAttempts; len(reqs) != want {
		t.Fatalf("requests = %d, want %d", len(reqs), want)
	}
	targets := map[wire.NodeID]int{}
	for _, r := range reqs[2:] {
		targets[r.Target]++
	}
	if len(targets) < 2 {
		t.Fatalf("retries all went to one target: %v", targets)
	}
}

// TestAdaptiveTimersDegradeAndRecover drives the link-quality estimator
// directly: a neighbour that keeps the link alive but whose gossip stops
// arriving pushes quality below the threshold, the timers take their
// multiplicative steps (never leaving the configured bounds), and once
// gossip flows again they return additively to nominal.
func TestAdaptiveTimersDegradeAndRecover(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	gMin, gMax := cfg.GossipBounds()
	mMin, mMax := cfg.MuteTimeoutBounds()
	id := wire.MsgID{Origin: 1, Seq: 1}

	check := func(stage string) {
		if g := h.p.GossipPeriod(); g < gMin || g > gMax {
			t.Fatalf("%s: gossip period %s outside [%s, %s]", stage, g, gMin, gMax)
		}
		if m := h.p.MuteTimeout(); m < mMin || m > mMax {
			t.Fatalf("%s: mute timeout %s outside [%s, %s]", stage, m, mMin, mMax)
		}
	}

	// Healthy phase: one gossip per maintenance window keeps quality high
	// and the timers nominal.
	for i := 0; i < 10; i++ {
		h.p.HandlePacket(h.gossipFrom(2, id))
		h.run(cfg.MaintenanceInterval)
		check("healthy")
	}
	if h.p.GossipPeriod() != cfg.GossipInterval || h.p.MuteTimeout() != cfg.Mute.Timeout {
		t.Fatalf("healthy links moved the timers: gossip %s, mute %s",
			h.p.GossipPeriod(), h.p.MuteTimeout())
	}
	if h.p.LinkQualCount() != 1 {
		t.Fatalf("LinkQualCount = %d, want 1", h.p.LinkQualCount())
	}

	// Degraded phase: the neighbour stays alive (state packets) but its
	// gossip is lost. Quality decays, the timers walk to their degraded
	// bounds, and never beyond them.
	for i := 0; i < 30; i++ {
		h.p.HandlePacket(h.stateFrom(2, &wire.OverlayState{Active: true}))
		h.run(cfg.MaintenanceInterval)
		check("degraded")
	}
	if h.p.GossipPeriod() != gMin {
		t.Fatalf("degraded gossip period = %s, want floor %s", h.p.GossipPeriod(), gMin)
	}
	if h.p.MuteTimeout() != mMax {
		t.Fatalf("degraded mute timeout = %s, want ceiling %s", h.p.MuteTimeout(), mMax)
	}
	if st := h.p.Stats(); st.Adaptations == 0 {
		t.Fatal("no adaptations recorded for a degraded link")
	}

	// Recovery phase: gossip flows again; the timers step back to nominal.
	for i := 0; i < 60; i++ {
		h.p.HandlePacket(h.gossipFrom(2, id))
		h.run(cfg.MaintenanceInterval)
		check("recovering")
	}
	if h.p.GossipPeriod() != cfg.GossipInterval {
		t.Fatalf("recovered gossip period = %s, want nominal %s", h.p.GossipPeriod(), cfg.GossipInterval)
	}
	if h.p.MuteTimeout() != cfg.Mute.Timeout {
		t.Fatalf("recovered mute timeout = %s, want nominal %s", h.p.MuteTimeout(), cfg.Mute.Timeout)
	}
}

// TestAdaptiveTimingDisabledIsStatic: with the gate off, the estimator tracks
// nothing and the timers never move regardless of link behaviour.
func TestAdaptiveTimingDisabledIsStatic(t *testing.T) {
	cfg := testConfig()
	cfg.AdaptiveTiming = false
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 1}
	for i := 0; i < 20; i++ {
		h.p.HandlePacket(h.stateFrom(2, &wire.OverlayState{Active: true}))
		if i < 3 {
			h.p.HandlePacket(h.gossipFrom(2, id))
		}
		h.run(cfg.MaintenanceInterval)
	}
	if h.p.LinkQualCount() != 0 {
		t.Fatalf("LinkQualCount = %d with adaptation off, want 0", h.p.LinkQualCount())
	}
	if h.p.GossipPeriod() != cfg.GossipInterval || h.p.MuteTimeout() != cfg.Mute.Timeout {
		t.Fatalf("static timers moved: gossip %s, mute %s", h.p.GossipPeriod(), h.p.MuteTimeout())
	}
	if st := h.p.Stats(); st.Adaptations != 0 {
		t.Fatalf("Adaptations = %d with adaptation off, want 0", st.Adaptations)
	}
}

// TestLinkQualExpiresWithNeighbors: estimator entries die with their
// neighbour-table entries, so MaxNeighbors bounds both.
func TestLinkQualExpiresWithNeighbors(t *testing.T) {
	cfg := testConfig()
	h := newHarness(t, 0, cfg)
	id := wire.MsgID{Origin: 1, Seq: 1}
	for n := wire.NodeID(2); n <= 5; n++ {
		h.p.HandlePacket(h.gossipFrom(n, id))
	}
	h.run(cfg.MaintenanceInterval)
	if h.p.LinkQualCount() != 4 {
		t.Fatalf("LinkQualCount = %d, want 4", h.p.LinkQualCount())
	}
	// Silence past NeighborTTL expires the neighbours and their estimators.
	h.run(cfg.NeighborTTL + 2*cfg.MaintenanceInterval)
	if h.p.LinkQualCount() != 0 {
		t.Fatalf("LinkQualCount = %d after neighbour expiry, want 0", h.p.LinkQualCount())
	}
	if h.p.NeighborCount() != 0 {
		t.Fatalf("NeighborCount = %d after expiry, want 0", h.p.NeighborCount())
	}
}
