package loadgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestJSONRoundTrip(t *testing.T) {
	in := Config{
		Senders:      8,
		PayloadSizes: []int{128, 1024},
		Arrival:      Poisson,
		Start:        15 * time.Second,
		Steps: []Step{
			{Rate: 2, Duration: 20 * time.Second},
			{Rate: 2, EndRate: 50, Duration: 30 * time.Second},
		},
		Window:  3,
		Quorum:  0.8,
		Timeout: 5 * time.Second,
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, *out) {
		t.Errorf("round trip changed the config:\n in: %+v\nout: %+v", in, *out)
	}
}

// TestParseErrorsNameField: malformed inputs must say which field is wrong.
func TestParseErrorsNameField(t *testing.T) {
	cases := []struct {
		name, in, field string
	}{
		{"bad step duration", `{"senders":1,"steps":[{"rate":1,"duration":"fast"}]}`, "steps[0].duration"},
		{"zero step duration", `{"senders":1,"steps":[{"rate":1,"duration":"0s"}]}`, "steps[0].duration"},
		{"negative rate", `{"senders":1,"steps":[{"rate":-2,"duration":"10s"}]}`, "steps[0].rate"},
		{"bad ramp", `{"senders":1,"steps":[{"rate":1,"endRate":-5,"duration":"10s"}]}`, "steps[0].endRate"},
		{"bad start", `{"senders":1,"start":"soon","steps":[{"rate":1,"duration":"10s"}]}`, "start"},
		{"bad arrival", `{"senders":1,"arrival":"bursty","steps":[{"rate":1,"duration":"10s"}]}`, "arrival"},
		{"no senders", `{"steps":[{"rate":1,"duration":"10s"}]}`, "senders"},
		{"no steps", `{"senders":1,"steps":[]}`, "steps"},
		{"unknown field", `{"senders":1,"stepz":[]}`, "stepz"},
		{"bad quorum", `{"senders":1,"quorum":2,"steps":[{"rate":1,"duration":"10s"}]}`, "quorum"},
		{"bad timeout", `{"senders":1,"timeout":"-3s","steps":[{"rate":1,"duration":"10s"}]}`, "timeout"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: Parse accepted %s", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name %q", tc.name, err, tc.field)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	c, err := Parse([]byte(`{"senders":2,"steps":[{"rate":1,"duration":"10s"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrival != Periodic {
		t.Errorf("default arrival = %v, want periodic", c.Arrival)
	}
	if !reflect.DeepEqual(c.PayloadSizes, []int{256}) {
		t.Errorf("default payloadSizes = %v, want [256]", c.PayloadSizes)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "load.json")
	body := `{"senders":4,"arrival":"closed-loop","steps":[{"duration":"30s"}],"window":2}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Arrival != ClosedLoop || c.Window != 2 {
		t.Errorf("loaded %+v", c)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file must error")
	}
}

// FuzzParse hardens the config parser: no panic on any input, and every
// accepted config must satisfy its own validation contract (so downstream
// code can trust Parse's output blindly).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{"senders":4,"arrival":"poisson","start":"10s","steps":[{"rate":2,"duration":"30s"}]}`,
		`{"senders":1,"steps":[{"rate":1,"endRate":100,"duration":"5s"}]}`,
		`{"senders":8,"arrival":"closed-loop","steps":[{"duration":"20s"}],"window":3,"quorum":0.8,"timeout":"2s"}`,
		// Bad ramps, zero-duration steps, negative rates: must reject, not hang.
		`{"senders":1,"steps":[{"rate":1,"endRate":-1,"duration":"5s"}]}`,
		`{"senders":1,"steps":[{"rate":5,"duration":"0s"}]}`,
		`{"senders":1,"steps":[{"rate":-3,"duration":"5s"}]}`,
		`{"senders":-1,"steps":[{"rate":1,"duration":"5s"}]}`,
		`{"senders":1,"steps":[{"rate":1e308,"duration":"5s"}]}`,
		`{"senders":1,"start":"-5s","steps":[{"rate":1,"duration":"5s"}]}`,
		`{"senders":1,"steps":[{"rate":1,"duration":"9999999h"}]}`,
		`{}`, `[]`, `null`, `"periodic"`, `{"unknown":true}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("Parse accepted a config its own Validate rejects: %v\nconfig: %+v", verr, c)
		}
		// Accepted configs must round-trip and re-validate.
		raw, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted config does not marshal: %v", err)
		}
		if _, err := Parse(raw); err != nil {
			t.Fatalf("accepted config does not re-parse: %v\njson: %s", err, raw)
		}
	})
}
