package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// jsonConfig is the wire form of a Config: durations as strings ("30s"), the
// arrival model by name. Unknown fields are rejected so typos in a config
// file fail loudly instead of silently defaulting.
type jsonConfig struct {
	Senders      int        `json:"senders"`
	PayloadSizes []int      `json:"payloadSizes,omitempty"`
	Arrival      string     `json:"arrival"`
	Start        string     `json:"start,omitempty"`
	Steps        []jsonStep `json:"steps"`
	Window       int        `json:"window,omitempty"`
	Quorum       float64    `json:"quorum,omitempty"`
	Timeout      string     `json:"timeout,omitempty"`
}

type jsonStep struct {
	Rate     float64 `json:"rate"`
	EndRate  float64 `json:"endRate,omitempty"`
	Duration string  `json:"duration"`
}

// MarshalJSON implements json.Marshaler.
func (c Config) MarshalJSON() ([]byte, error) {
	j := jsonConfig{
		Senders:      c.Senders,
		PayloadSizes: c.PayloadSizes,
		Arrival:      c.Arrival.String(),
		Window:       c.Window,
		Quorum:       c.Quorum,
	}
	if c.Start > 0 {
		j.Start = c.Start.String()
	}
	if c.Timeout > 0 {
		j.Timeout = c.Timeout.String()
	}
	for _, s := range c.Steps {
		j.Steps = append(j.Steps, jsonStep{Rate: s.Rate, EndRate: s.EndRate, Duration: s.Duration.String()})
	}
	return json.Marshal(j)
}

// UnmarshalJSON implements json.Unmarshaler. Decoding errors name the
// offending field.
func (c *Config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var j jsonConfig
	if err := dec.Decode(&j); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}
	out := Config{
		Senders:      j.Senders,
		PayloadSizes: j.PayloadSizes,
		Window:       j.Window,
		Quorum:       j.Quorum,
	}
	switch j.Arrival {
	case "periodic", "":
		out.Arrival = Periodic
	case "poisson":
		out.Arrival = Poisson
	case "closed-loop":
		out.Arrival = ClosedLoop
	default:
		return fmt.Errorf("loadgen: arrival: unknown model %q (want periodic, poisson or closed-loop)", j.Arrival)
	}
	var err error
	if out.Start, err = parseDur("start", j.Start); err != nil {
		return err
	}
	if out.Timeout, err = parseDur("timeout", j.Timeout); err != nil {
		return err
	}
	for i, s := range j.Steps {
		d, err := parseDur(fmt.Sprintf("steps[%d].duration", i), s.Duration)
		if err != nil {
			return err
		}
		out.Steps = append(out.Steps, Step{Rate: s.Rate, EndRate: s.EndRate, Duration: d})
	}
	*c = out
	return nil
}

func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("loadgen: %s: %v", field, err)
	}
	return d, nil
}

// Parse decodes and validates a JSON config. PayloadSizes defaults to
// a single 256-byte payload when omitted.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if len(c.PayloadSizes) == 0 {
		c.PayloadSizes = []int{256}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Load reads and parses a JSON config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
