package loadgen

import (
	"sort"
	"testing"
	"time"

	"bbcast/internal/wire"
)

// fakeSim is a minimal deterministic event loop standing in for the engine:
// events fire in (time, insertion) order, the only ordering the driver may
// rely on.
type fakeSim struct {
	t     time.Duration
	seq   int
	queue []fakeEvent
}

type fakeEvent struct {
	at  time.Duration
	seq int
	fn  func()
}

func (s *fakeSim) now() time.Duration { return s.t }

func (s *fakeSim) schedule(at time.Duration, fn func()) {
	if at < s.t {
		at = s.t
	}
	s.queue = append(s.queue, fakeEvent{at: at, seq: s.seq, fn: fn})
	s.seq++
}

// runUntil fires every event scheduled up to and including t.
func (s *fakeSim) runUntil(until time.Duration) {
	for {
		sort.SliceStable(s.queue, func(i, j int) bool {
			if s.queue[i].at != s.queue[j].at {
				return s.queue[i].at < s.queue[j].at
			}
			return s.queue[i].seq < s.queue[j].seq
		})
		if len(s.queue) == 0 || s.queue[0].at > until {
			s.t = until
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.t = ev.at
		ev.fn()
	}
}

// closedCfg is a 2-sender, window-1 closed-loop schedule: quorum 0.5 of 4
// eligible receivers (need 2 accepts), 2s timeout, injection window [0, 10s).
func closedCfg() Config {
	return Config{
		Senders:      2,
		PayloadSizes: []int{64},
		Arrival:      ClosedLoop,
		Steps:        []Step{{Duration: 10 * time.Second}},
		Window:       1,
		Quorum:       0.5,
		Timeout:      2 * time.Second,
	}
}

// mid builds a message id.
func mid(origin, seq int) wire.MsgID {
	return wire.MsgID{Origin: wire.NodeID(origin), Seq: wire.Seq(seq)}
}

// harness wires a driver to the fake sim. The nth injection (1-based) gets
// id mid(slot, n): the sender slot as origin, a global sequence number.
func harness(cfg Config) (*Driver, *fakeSim, *[]int) {
	sim := &fakeSim{}
	var slots []int
	d := NewDriver(cfg, 4) // need = ceil(0.5*4) = 2
	nextID := 0
	d.Bind(sim.now, sim.schedule, func(slot int) (wire.MsgID, wire.NodeID) {
		nextID++
		slots = append(slots, slot)
		return mid(slot, nextID), wire.NodeID(slot)
	})
	return d, sim, &slots
}

func accept(d *Driver, node int, id wire.MsgID) {
	d.OnAccept(0, wire.NodeID(node), id, nil, wire.Meta{})
}

// TestDriverQuorumClocksNextInjection: a message completing at quorum
// triggers the slot's next launch; the other slot stays outstanding.
func TestDriverQuorumClocksNextInjection(t *testing.T) {
	d, sim, slots := harness(closedCfg())
	d.Start()
	sim.runUntil(0)
	if d.Injected() != 2 {
		t.Fatalf("after start: injected %d, want 2 (window 1 × 2 senders)", d.Injected())
	}

	accept(d, 10, mid(0, 1)) // 1 of 2 needed
	sim.runUntil(100 * time.Millisecond)
	if d.Injected() != 2 {
		t.Fatalf("below quorum must not relaunch: injected %d", d.Injected())
	}
	accept(d, 11, mid(0, 1)) // quorum
	sim.runUntil(200 * time.Millisecond)
	if d.Injected() != 3 {
		t.Fatalf("quorum must clock the next injection: injected %d, want 3", d.Injected())
	}
	if got := (*slots)[2]; got != (*slots)[0] {
		t.Errorf("relaunch went to slot %d, want the completed slot %d", got, (*slots)[0])
	}

	// Extra accepts for the retired message must not double-launch.
	accept(d, 12, mid(0, 1))
	accept(d, 13, mid(0, 1))
	sim.runUntil(300 * time.Millisecond)
	if d.Injected() != 3 {
		t.Errorf("late accepts for a completed message relaunched: injected %d", d.Injected())
	}
}

// TestDriverOriginAcceptDoesNotCount: the originator's own accept is not
// quorum progress.
func TestDriverOriginAcceptDoesNotCount(t *testing.T) {
	d, sim, _ := harness(closedCfg())
	d.Start()
	sim.runUntil(0)
	accept(d, 0, mid(0, 1)) // slot 0's origin is NodeID(0)
	accept(d, 10, mid(0, 1))
	sim.runUntil(time.Second)
	if d.Injected() != 2 {
		t.Fatalf("origin accept counted towards quorum: injected %d, want 2", d.Injected())
	}
	accept(d, 11, mid(0, 1))
	sim.runUntil(time.Second)
	if d.Injected() != 3 {
		t.Fatalf("two non-origin accepts must complete: injected %d, want 3", d.Injected())
	}
}

// TestDriverTimeoutUnsticksSlot: a message that never reaches quorum is
// force-completed at the timeout so the slot keeps clocking.
func TestDriverTimeoutUnsticksSlot(t *testing.T) {
	d, sim, _ := harness(closedCfg())
	d.Start()
	sim.runUntil(0)
	sim.runUntil(1900 * time.Millisecond)
	if d.Injected() != 2 {
		t.Fatalf("before timeout: injected %d, want 2", d.Injected())
	}
	sim.runUntil(2100 * time.Millisecond)
	if d.Injected() != 4 {
		t.Fatalf("both slots must relaunch at the 2s timeout: injected %d, want 4", d.Injected())
	}
}

// TestDriverStopsAtScheduleEnd: no injections at or past End, even with
// completions still arriving; late timeouts for completed ids are no-ops.
func TestDriverStopsAtScheduleEnd(t *testing.T) {
	cfg := closedCfg()
	d, sim, _ := harness(cfg)
	d.Start()
	// 2s timeout, window [0,10s): each slot launches at 0,2,4,6,8 = 5 times.
	sim.runUntil(30 * time.Second)
	if d.Injected() != 10 {
		t.Fatalf("injected %d, want 10 (5 timeout rounds × 2 slots, none past End)", d.Injected())
	}
	accept(d, 10, mid(0, 9))
	accept(d, 11, mid(0, 9))
	sim.runUntil(31 * time.Second)
	if d.Injected() != 10 {
		t.Errorf("completion after End relaunched: injected %d", d.Injected())
	}
}

// TestDriverWindowKeepsNOutstanding: window 2 keeps two messages in flight
// per sender slot.
func TestDriverWindowKeepsNOutstanding(t *testing.T) {
	cfg := closedCfg()
	cfg.Senders = 1
	cfg.Window = 2
	d, sim, slots := harness(cfg)
	d.Start()
	sim.runUntil(0)
	if d.Injected() != 2 {
		t.Fatalf("window 2 must open with 2 outstanding: injected %d", d.Injected())
	}
	accept(d, 10, mid(0, 2))
	accept(d, 11, mid(0, 2))
	sim.runUntil(time.Second)
	if d.Injected() != 3 {
		t.Fatalf("completing one of two must top the window back up: injected %d", d.Injected())
	}
	for _, s := range *slots {
		if s != 0 {
			t.Errorf("single-sender run injected on slot %d", s)
		}
	}
}

// TestDriverUnknownIDIgnored: accepts for messages the driver did not
// originate (legacy workload traffic) are ignored.
func TestDriverUnknownIDIgnored(t *testing.T) {
	d, sim, _ := harness(closedCfg())
	d.Start()
	sim.runUntil(0)
	accept(d, 10, mid(99, 12345))
	accept(d, 11, mid(99, 12345))
	sim.runUntil(time.Second)
	if d.Injected() != 2 {
		t.Errorf("foreign id advanced the loop: injected %d, want 2", d.Injected())
	}
}

func TestNewDriverQuorumRounding(t *testing.T) {
	cases := []struct {
		quorum   float64
		eligible int
		need     int
	}{
		{0.9, 10, 9},
		{0.5, 4, 2},
		{0.5, 5, 3},  // ceil
		{0.95, 3, 3}, // ceil(2.85)
		{0.9, 0, 1},  // floor of 1: a lone node still completes
	}
	for _, tc := range cases {
		cfg := closedCfg()
		cfg.Quorum = tc.quorum
		if d := NewDriver(cfg, tc.eligible); d.need != tc.need {
			t.Errorf("quorum %v of %d: need %d, want %d", tc.quorum, tc.eligible, d.need, tc.need)
		}
	}
}
