package loadgen

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// ramp is a three-segment schedule exercising flat, up-ramp and down-ramp
// steps: 2 msg/s for 10s, 2→10 msg/s over 10s, then 10→1 msg/s over 5s.
// Integral: 20 + 60 + 27.5 = 107.5.
func ramp(arrival Arrival) Config {
	return Config{
		Senders:      4,
		PayloadSizes: []int{256},
		Arrival:      arrival,
		Start:        5 * time.Second,
		Steps: []Step{
			{Rate: 2, Duration: 10 * time.Second},
			{Rate: 2, EndRate: 10, Duration: 10 * time.Second},
			{Rate: 10, EndRate: 1, Duration: 5 * time.Second},
		},
	}
}

func TestExpectedCountIsCurveIntegral(t *testing.T) {
	c := ramp(Periodic)
	if got, want := c.ExpectedCount(), 107.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedCount = %v, want %v (trapezoid areas 20+60+27.5)", got, want)
	}
	if got, want := c.End(), 30*time.Second; got != want {
		t.Errorf("End = %v, want %v", got, want)
	}
	if got := c.MaxRate(); got != 10 {
		t.Errorf("MaxRate = %v, want 10", got)
	}
}

func TestRateAtCurve(t *testing.T) {
	c := ramp(Periodic)
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},                          // before start
		{5 * time.Second, 2},            // flat step
		{14 * time.Second, 2},           // still flat
		{20 * time.Second, 6},           // midpoint of the 2→10 ramp
		{27500 * time.Millisecond, 5.5}, // midpoint of the 10→1 ramp
		{30 * time.Second, 0},           // after end
		{time.Hour, 0},
	}
	for _, tc := range cases {
		if got := c.RateAt(tc.at); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestPeriodicCountMatchesIntegral: for every seed-independent periodic
// schedule, the materialized injection count equals the integral of the
// offered-load curve up to per-step quantization.
func TestPeriodicCountMatchesIntegral(t *testing.T) {
	configs := []Config{
		ramp(Periodic),
		{Senders: 1, PayloadSizes: []int{64}, Arrival: Periodic,
			Steps: []Step{{Rate: 7, Duration: 13 * time.Second}}},
		{Senders: 2, PayloadSizes: []int{64}, Arrival: Periodic, Start: time.Second,
			Steps: []Step{{Rate: 0.5, Duration: 60 * time.Second}, {Rate: 20, Duration: 3 * time.Second}}},
	}
	for _, c := range configs {
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		times := c.Times(rand.New(rand.NewSource(1)))
		got, want := float64(len(times)), c.ExpectedCount()
		// Each step can over/under-shoot by one interval at its boundary.
		slack := float64(len(c.Steps)) + 1
		if math.Abs(got-want) > slack {
			t.Errorf("%+v: periodic count %v, want %v ± %v", c.Steps, got, want, slack)
		}
		for i, at := range times {
			if at < c.Start || at >= c.End() {
				t.Fatalf("times[%d] = %v outside schedule [%v, %v)", i, at, c.Start, c.End())
			}
			if i > 0 && at < times[i-1] {
				t.Fatalf("times[%d] = %v not monotonic (prev %v)", i, at, times[i-1])
			}
		}
	}
}

// TestPoissonCountMatchesIntegral: the thinned inhomogeneous Poisson process
// must realize the schedule's rate curve — per seed the count is within wide
// statistical bounds, and the mean over many seeds converges to the integral.
func TestPoissonCountMatchesIntegral(t *testing.T) {
	c := ramp(Poisson)
	want := c.ExpectedCount() // 107.5
	const seeds = 300
	var sum float64
	sigma := math.Sqrt(want)
	for seed := int64(0); seed < seeds; seed++ {
		n := float64(len(c.Times(rand.New(rand.NewSource(seed)))))
		sum += n
		if math.Abs(n-want) > 6*sigma {
			t.Errorf("seed %d: count %v, want %v ± %v (6σ)", seed, n, want, 6*sigma)
		}
	}
	mean := sum / seeds
	// Standard error of the mean: σ/√seeds ≈ 0.6; allow 5σ_mean.
	if tol := 5 * sigma / math.Sqrt(seeds); math.Abs(mean-want) > tol {
		t.Errorf("mean count over %d seeds = %v, want %v ± %v", seeds, mean, want, tol)
	}
}

// TestPoissonRampShape: thinning must concentrate arrivals where the rate is
// high — the up-ramp step (integral 60) gets ~3x the flat step's (20).
func TestPoissonRampShape(t *testing.T) {
	c := ramp(Poisson)
	var flat, up, down float64
	for seed := int64(0); seed < 200; seed++ {
		for _, at := range c.Times(rand.New(rand.NewSource(seed))) {
			switch {
			case at < 15*time.Second:
				flat++
			case at < 25*time.Second:
				up++
			default:
				down++
			}
		}
	}
	if ratio := up / flat; ratio < 2.5 || ratio > 3.5 {
		t.Errorf("up-ramp/flat arrival ratio = %v, want ≈ 3 (integrals 60 vs 20)", ratio)
	}
	if ratio := down / flat; ratio < 1.1 || ratio > 1.7 {
		t.Errorf("down-ramp/flat arrival ratio = %v, want ≈ 1.375 (integrals 27.5 vs 20)", ratio)
	}
}

// TestTimesDeterministic: identical seeds give identical schedules; distinct
// seeds differ (for Poisson).
func TestTimesDeterministic(t *testing.T) {
	c := ramp(Poisson)
	a := c.Times(rand.New(rand.NewSource(42)))
	b := c.Times(rand.New(rand.NewSource(42)))
	if len(a) != len(b) {
		t.Fatalf("same seed, different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different times[%d]: %v vs %v", i, a[i], b[i])
		}
	}
	other := c.Times(rand.New(rand.NewSource(43)))
	if len(other) == len(a) {
		same := true
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical Poisson schedules")
		}
	}
}

func TestTimesPanicsOnClosedLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Times on a closed-loop config must panic")
		}
	}()
	ramp(ClosedLoop).Times(rand.New(rand.NewSource(1)))
}

// TestPeriodicExtremeRateTerminates: rates at the validation bound must not
// loop forever on a zero-rounded gap.
func TestPeriodicExtremeRateTerminates(t *testing.T) {
	c := Config{Senders: 1, PayloadSizes: []int{1}, Arrival: Periodic,
		Steps: []Step{{Rate: MaxOfferedRate, Duration: time.Millisecond}}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(c.Times(nil)), 1000; got != want {
		t.Errorf("count at max rate = %d, want %d", got, want)
	}
}

// TestValidateNamesOffendingField: every rejection must say which field is
// wrong (the contract the fuzz harness also enforces).
func TestValidateNamesOffendingField(t *testing.T) {
	valid := ramp(Poisson)
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"no senders", func(c *Config) { c.Senders = 0 }, "senders"},
		{"no payloads", func(c *Config) { c.PayloadSizes = nil }, "payloadSizes"},
		{"zero payload", func(c *Config) { c.PayloadSizes = []int{256, 0} }, "payloadSizes[1]"},
		{"bad arrival", func(c *Config) { c.Arrival = 99 }, "arrival"},
		{"negative start", func(c *Config) { c.Start = -time.Second }, "start"},
		{"no steps", func(c *Config) { c.Steps = nil }, "steps"},
		{"zero duration", func(c *Config) { c.Steps[1].Duration = 0 }, "steps[1].duration"},
		{"negative rate", func(c *Config) { c.Steps[2].Rate = -3 }, "steps[2].rate"},
		{"huge rate", func(c *Config) { c.Steps[0].Rate = 2e6 }, "steps[0].rate"},
		{"negative end rate", func(c *Config) { c.Steps[0].EndRate = -1 }, "steps[0].endRate"},
		{"huge end rate", func(c *Config) { c.Steps[0].EndRate = 2e6 }, "steps[0].endRate"},
		{"negative window", func(c *Config) { c.Window = -1 }, "window"},
		{"quorum over 1", func(c *Config) { c.Quorum = 1.5 }, "quorum"},
		{"negative timeout", func(c *Config) { c.Timeout = -time.Second }, "timeout"},
	}
	for _, tc := range cases {
		c := valid
		c.Steps = append([]Step(nil), valid.Steps...)
		c.PayloadSizes = append([]int(nil), valid.PayloadSizes...)
		tc.mutate(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error %q does not name field %q", tc.name, err, tc.field)
		}
	}
	if err := valid.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Closed-loop ignores rates entirely: a rate-less schedule is fine.
	cl := Config{Senders: 2, PayloadSizes: []int{64}, Arrival: ClosedLoop,
		Steps: []Step{{Duration: 10 * time.Second}}}
	if err := cl.Validate(); err != nil {
		t.Errorf("closed-loop config with no rates rejected: %v", err)
	}
}

func TestEffectiveDefaults(t *testing.T) {
	var c Config
	if got := c.EffectiveWindow(); got != 1 {
		t.Errorf("EffectiveWindow() zero value = %d, want 1", got)
	}
	if got := c.EffectiveQuorum(); got != DefaultQuorum {
		t.Errorf("EffectiveQuorum() zero value = %v, want %v", got, DefaultQuorum)
	}
	if got := c.EffectiveTimeout(); got != DefaultTimeout {
		t.Errorf("EffectiveTimeout() zero value = %v, want %v", got, DefaultTimeout)
	}
	c.Window, c.Quorum, c.Timeout = 3, 0.5, time.Second
	if c.EffectiveWindow() != 3 || c.EffectiveQuorum() != 0.5 || c.EffectiveTimeout() != time.Second {
		t.Error("explicit closed-loop knobs must pass through unchanged")
	}
}
