// Package loadgen generates deterministic offered-load workloads for the
// simulator: stepped and ramped offered-load schedules over many concurrent
// senders, payload-size sweeps, and open-loop (periodic, Poisson) or
// closed-loop arrival models. All randomness is drawn from rng streams the
// caller derives from the engine seed, so a load-generated run is a pure
// function of (scenario, seed) and replays bit-identically serial vs pool.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Arrival selects the inter-arrival process.
type Arrival int

// Arrival models.
const (
	// Periodic spaces injections evenly at the instantaneous offered rate
	// (open loop: injections never wait for the network).
	Periodic Arrival = iota + 1
	// Poisson draws exponential inter-arrival gaps at the instantaneous
	// offered rate (open loop; ramps use Lewis–Shedler thinning, so the
	// realized process is exactly the inhomogeneous Poisson process of the
	// schedule's rate curve).
	Poisson
	// ClosedLoop gates each sender's next injection on delivery of its
	// previous message (Window outstanding per sender, completion at Quorum
	// coverage or Timeout). The schedule's rates are ignored; its total
	// duration bounds the injection window. Closed-loop load self-clocks to
	// the network's sustainable throughput instead of overrunning it.
	ClosedLoop
)

// String implements fmt.Stringer.
func (a Arrival) String() string {
	switch a {
	case Periodic:
		return "periodic"
	case Poisson:
		return "poisson"
	case ClosedLoop:
		return "closed-loop"
	default:
		return fmt.Sprintf("arrival(%d)", int(a))
	}
}

// Step is one segment of the offered-load schedule.
type Step struct {
	// Rate is the network-wide offered load in messages/second at the start
	// of the step.
	Rate float64
	// EndRate, when positive, ramps the offered rate linearly from Rate to
	// EndRate across the step. Zero means a flat step at Rate.
	EndRate float64
	// Duration is the step length.
	Duration time.Duration
}

// rateAt interpolates the step's offered rate at offset dt into the step.
func (s Step) rateAt(dt time.Duration) float64 {
	if s.EndRate <= 0 || s.EndRate == s.Rate || s.Duration <= 0 {
		return s.Rate
	}
	frac := float64(dt) / float64(s.Duration)
	return s.Rate + (s.EndRate-s.Rate)*frac
}

// integral is the expected injection count over the whole step: the area
// under the (linear) rate curve.
func (s Step) integral() float64 {
	end := s.EndRate
	if end <= 0 {
		end = s.Rate
	}
	return (s.Rate + end) / 2 * s.Duration.Seconds()
}

// maxRate is the step's peak offered rate.
func (s Step) maxRate() float64 {
	return math.Max(s.Rate, s.EndRate)
}

// Config describes a load-generation workload. The zero value is invalid;
// construct explicitly (or via Parse) and Validate before use.
type Config struct {
	// Senders is how many distinct correct nodes originate messages
	// (round-robin over injections; the runner takes them from the lowest
	// correct ids).
	Senders int
	// PayloadSizes is cycled per injection, enabling payload-size sweeps
	// within one run. A single entry fixes the size.
	PayloadSizes []int
	// Arrival selects the inter-arrival process.
	Arrival Arrival
	// Start is when the first step begins.
	Start time.Duration
	// Steps is the offered-load schedule, executed back to back from Start.
	Steps []Step

	// Window is the number of outstanding messages per sender (closed loop
	// only; defaults to 1 when zero).
	Window int
	// Quorum is the fraction of eligible receivers whose acceptance
	// completes a closed-loop message (0 defaults to 0.9).
	Quorum float64
	// Timeout force-completes a closed-loop message that never reaches
	// quorum, so saturation losses cannot deadlock the loop (0 defaults to
	// 10s).
	Timeout time.Duration
}

// Defaults for the closed-loop knobs.
const (
	DefaultQuorum  = 0.9
	DefaultTimeout = 10 * time.Second
)

// MaxOfferedRate bounds a step's offered rate (messages/second). Beyond it
// the periodic inter-arrival gap would round below the engine's nanosecond
// resolution.
const MaxOfferedRate = 1e6

// End is when the schedule's last step finishes.
func (c Config) End() time.Duration {
	t := c.Start
	for _, s := range c.Steps {
		t += s.Duration
	}
	return t
}

// RateAt returns the offered rate (messages/second) at absolute time t: zero
// before Start and after End, the step's (interpolated) rate inside.
func (c Config) RateAt(t time.Duration) float64 {
	if t < c.Start {
		return 0
	}
	off := t - c.Start
	for _, s := range c.Steps {
		if off < s.Duration {
			return s.rateAt(off)
		}
		off -= s.Duration
	}
	return 0
}

// ExpectedCount is the integral of the offered-load curve: the expected
// number of injections for the open-loop arrival models.
func (c Config) ExpectedCount() float64 {
	var sum float64
	for _, s := range c.Steps {
		sum += s.integral()
	}
	return sum
}

// MaxRate is the schedule's peak offered rate.
func (c Config) MaxRate() float64 {
	var m float64
	for _, s := range c.Steps {
		m = math.Max(m, s.maxRate())
	}
	return m
}

// EffectiveWindow, EffectiveQuorum and EffectiveTimeout apply the closed-loop
// defaults.
func (c Config) EffectiveWindow() int {
	if c.Window <= 0 {
		return 1
	}
	return c.Window
}

// EffectiveQuorum applies the closed-loop quorum default.
func (c Config) EffectiveQuorum() float64 {
	if c.Quorum <= 0 {
		return DefaultQuorum
	}
	return c.Quorum
}

// EffectiveTimeout applies the closed-loop timeout default.
func (c Config) EffectiveTimeout() time.Duration {
	if c.Timeout <= 0 {
		return DefaultTimeout
	}
	return c.Timeout
}

// Validate checks the configuration, naming the offending field in every
// error.
func (c Config) Validate() error {
	if c.Senders < 1 {
		return fmt.Errorf("loadgen: senders: must be >= 1, got %d", c.Senders)
	}
	if len(c.PayloadSizes) == 0 {
		return fmt.Errorf("loadgen: payloadSizes: at least one size required")
	}
	for i, sz := range c.PayloadSizes {
		if sz < 1 {
			return fmt.Errorf("loadgen: payloadSizes[%d]: must be >= 1, got %d", i, sz)
		}
	}
	switch c.Arrival {
	case Periodic, Poisson, ClosedLoop:
	default:
		return fmt.Errorf("loadgen: arrival: unknown model %d (want periodic, poisson or closed-loop)", int(c.Arrival))
	}
	if c.Start < 0 {
		return fmt.Errorf("loadgen: start: must be >= 0, got %s", c.Start)
	}
	if len(c.Steps) == 0 {
		return fmt.Errorf("loadgen: steps: at least one step required")
	}
	for i, s := range c.Steps {
		if s.Duration <= 0 {
			return fmt.Errorf("loadgen: steps[%d].duration: must be > 0, got %s", i, s.Duration)
		}
		if c.Arrival == ClosedLoop {
			// Closed-loop ignores rates; only the durations matter.
			continue
		}
		if s.Rate <= 0 {
			return fmt.Errorf("loadgen: steps[%d].rate: must be > 0, got %g", i, s.Rate)
		}
		if s.Rate > MaxOfferedRate {
			return fmt.Errorf("loadgen: steps[%d].rate: must be <= %g msg/s, got %g", i, float64(MaxOfferedRate), s.Rate)
		}
		if s.EndRate < 0 {
			return fmt.Errorf("loadgen: steps[%d].endRate: must be >= 0 (zero means flat), got %g", i, s.EndRate)
		}
		if s.EndRate > MaxOfferedRate {
			return fmt.Errorf("loadgen: steps[%d].endRate: must be <= %g msg/s, got %g", i, float64(MaxOfferedRate), s.EndRate)
		}
	}
	if c.Window < 0 {
		return fmt.Errorf("loadgen: window: must be >= 0 (zero defaults to 1), got %d", c.Window)
	}
	if c.Quorum < 0 || c.Quorum > 1 {
		return fmt.Errorf("loadgen: quorum: must be in [0,1] (zero defaults to %g), got %g", DefaultQuorum, c.Quorum)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("loadgen: timeout: must be >= 0 (zero defaults to %s), got %s", DefaultTimeout, c.Timeout)
	}
	return nil
}

// Times materializes the open-loop injection schedule, deterministically
// derived from rng (pass a dedicated substream, e.g. eng.SubRand). Periodic
// spaces injections at the instantaneous rate; Poisson realizes the
// inhomogeneous Poisson process of the rate curve by Lewis–Shedler thinning:
// candidates are drawn at the schedule's peak rate and accepted with
// probability rate(t)/peak, so the expected count equals ExpectedCount.
// Calling Times on a closed-loop config panics: closed-loop arrivals are
// produced at run time by the Driver.
func (c Config) Times(rng *rand.Rand) []time.Duration {
	switch c.Arrival {
	case Periodic:
		return c.periodicTimes()
	case Poisson:
		return c.poissonTimes(rng)
	default:
		panic(fmt.Sprintf("loadgen: Times called on %s config", c.Arrival))
	}
}

func (c Config) periodicTimes() []time.Duration {
	var out []time.Duration
	end := c.End()
	for t := c.Start; t < end; {
		r := c.RateAt(t)
		if r <= 0 {
			break
		}
		out = append(out, t)
		gap := time.Duration(float64(time.Second) / r)
		if gap <= 0 {
			gap = time.Nanosecond
		}
		t += gap
	}
	return out
}

func (c Config) poissonTimes(rng *rand.Rand) []time.Duration {
	peak := c.MaxRate()
	if peak <= 0 {
		return nil
	}
	var out []time.Duration
	end := c.End()
	for t := c.Start; ; {
		t += time.Duration(rng.ExpFloat64() / peak * float64(time.Second))
		if t >= end {
			break
		}
		if rng.Float64()*peak <= c.RateAt(t) {
			out = append(out, t)
		}
	}
	return out
}
