package loadgen

import (
	"time"

	"bbcast/internal/obsv"
	"bbcast/internal/wire"
)

// Driver runs the closed-loop arrival model inside a simulation. It is an
// obsv.Observer: the runner places it on the run's composite observer chain
// so it sees every accept at a correct node, and it keeps Window messages
// outstanding per sender slot — injecting the next one as soon as the
// previous reaches quorum coverage (or times out). Everything is scheduled
// through the engine, so closed-loop runs replay bit-identically.
//
// Wiring order: NewDriver before the observer chain is assembled, Bind once
// the injection closure exists, Start before the engine runs.
type Driver struct {
	obsv.Nop

	cfg  Config
	need int // accepts that complete a message

	now      func() time.Duration
	schedule func(at time.Duration, fn func())
	inject   func(slot int) (wire.MsgID, wire.NodeID)

	inflight map[wire.MsgID]*flight
	injected int
}

// flight is one outstanding closed-loop message.
type flight struct {
	slot   int
	origin wire.NodeID
	got    int
}

var _ obsv.Observer = (*Driver)(nil)

// NewDriver returns a driver for the given closed-loop config. eligible is
// the number of receivers that count towards quorum (correct nodes minus the
// originator); the driver completes a message once ceil(quorum × eligible)
// of them accepted it.
func NewDriver(cfg Config, eligible int) *Driver {
	need := int(cfg.EffectiveQuorum()*float64(eligible) + 0.999999)
	if need < 1 {
		need = 1
	}
	return &Driver{
		cfg:      cfg,
		need:     need,
		inflight: make(map[wire.MsgID]*flight),
	}
}

// Bind supplies the runtime hooks: the simulation clock, the event scheduler
// and the injection closure (which originates one message at the sender for
// the given slot and reports its id and origin).
func (d *Driver) Bind(now func() time.Duration, schedule func(at time.Duration, fn func()), inject func(slot int) (wire.MsgID, wire.NodeID)) {
	d.now = now
	d.schedule = schedule
	d.inject = inject
}

// Start schedules the initial window: Window injections per sender slot at
// the schedule's start time.
func (d *Driver) Start() {
	window := d.cfg.EffectiveWindow()
	for s := 0; s < d.cfg.Senders; s++ {
		for w := 0; w < window; w++ {
			slot := s
			d.schedule(d.cfg.Start, func() { d.launch(slot) })
		}
	}
}

// Injected reports how many messages the driver originated.
func (d *Driver) Injected() int { return d.injected }

// launch originates the next message for a sender slot, unless the schedule
// window has closed.
func (d *Driver) launch(slot int) {
	if d.now() >= d.cfg.End() {
		return
	}
	id, origin := d.inject(slot)
	d.injected++
	d.inflight[id] = &flight{slot: slot, origin: origin}
	d.schedule(d.now()+d.cfg.EffectiveTimeout(), func() { d.complete(id) })
}

// complete retires an outstanding message and schedules the slot's next
// injection. Late timeout firings for already-completed messages are no-ops.
func (d *Driver) complete(id wire.MsgID) {
	f, ok := d.inflight[id]
	if !ok {
		return
	}
	delete(d.inflight, id)
	d.schedule(d.now(), func() { d.launch(f.slot) })
}

// OnAccept counts quorum progress for outstanding messages. The runner's
// observer chain only routes correct-node accepts here.
func (d *Driver) OnAccept(_ time.Duration, node wire.NodeID, id wire.MsgID, _ []byte, _ wire.Meta) {
	f, ok := d.inflight[id]
	if !ok || node == f.origin {
		return
	}
	f.got++
	if f.got >= d.need {
		d.complete(id)
	}
}
